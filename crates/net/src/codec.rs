//! Length-prefixed binary wire codec for the online detection protocol.
//!
//! Every frame is laid out as
//!
//! ```text
//! ┌─────────┬──────┬──────────┬──────────┬────────┬─────────┬─────────┬──────┐
//! │ len u32 │ kind │ peer u32 │ from u32 │ to u32 │ seq u64 │ aux u64 │ body │
//! └─────────┴──────┴──────────┴──────────┴────────┴─────────┴─────────┴──────┘
//! ```
//!
//! with all integers little-endian. `len` counts every byte after the
//! length field itself (so a reader fetches 4 bytes, then `len` more).
//! `peer` is the sending peer (the resequencing domain of `seq`), `from`
//! and `to` are the actor ids the detection layer addresses, and `seq` is
//! the per-link sequence number the receiver uses to deduplicate and
//! resequence.
//!
//! The `body` of a [`DetectMsg`] frame is **exactly
//! [`WireSize::wire_size`] bytes** — the paper-unit accounting of
//! Sections 3.4/4.4 — which is what turns `DetectionMetrics` bit counts
//! into real bytes-on-the-wire (property-tested in
//! `tests/codec_roundtrip.rs`). Two encodings need one redundant
//! out-of-band value to round-trip, carried in the fixed `aux` header
//! field (and therefore *outside* the accounted body):
//!
//! - `VcSnapshot` — the paper transmits only the clock (the interval index
//!   equals the snapshot's own component); `aux` carries the interval.
//! - `GroupToken` — `aux` is the presence bitmap of the carried candidate
//!   clocks, which caps group tokens at 64 scope processes on the wire.

use std::io::{self, Read};

use wcp_clocks::{Dependence, ProcessId, VectorClock};
use wcp_detect::offline::token::{Color, Token};
use wcp_detect::online::{ClockTag, DetectMsg, GroupTokenMsg};
use wcp_detect::{DdSnapshot, VcSnapshot};
use wcp_sim::{ActorId, WireSize};
use wcp_trace::MsgId;

use crate::wire2::{BitReader, BitWriter, ChainFrame, ClockChains, CLASS_APP, CLASS_SNAPSHOT};

/// Header bytes after the length field (kind + peer + from + to + seq + aux).
pub const HEADER_LEN: usize = 1 + 4 + 4 + 4 + 8 + 8;

/// Frame kinds. `DetectMsg` payloads are < 0x80; control frames ≥ 0xF0.
pub mod kind {
    /// Application message tagged with a vector clock.
    pub const APP_VECTOR: u8 = 1;
    /// Application message tagged with a scalar clock.
    pub const APP_SCALAR: u8 = 2;
    /// Figure 2 local snapshot (scope-projected vector clock).
    pub const VC_SNAPSHOT: u8 = 3;
    /// Section 4.1 local snapshot (scalar clock + direct dependences).
    pub const DD_SNAPSHOT: u8 = 4;
    /// End-of-trace marker.
    pub const END_OF_TRACE: u8 = 5;
    /// The Figure 3 token.
    pub const VC_TOKEN: u8 = 6;
    /// The Section 4 red-chain token.
    pub const DD_TOKEN: u8 = 7;
    /// A Figure 5 `visit` poll.
    pub const POLL: u8 = 8;
    /// Answer to a poll.
    pub const POLL_REPLY: u8 = 9;
    /// A §3.5 multi-token group token.
    pub const GROUP_TOKEN: u8 = 10;
    /// Registers a predicate with the multi-tenant session service
    /// (DESIGN.md S25).
    pub const MULTI_REGISTER: u8 = 11;
    /// Unregisters a predicate from the session service.
    pub const MULTI_UNREGISTER: u8 = 12;
    /// Per-predicate verdict from the session service.
    pub const MULTI_VERDICT: u8 = 13;
    /// Bit offset between a v1 clock-carrying kind and its v2 variant:
    /// every v2 kind is `v1 | V2_BIT`, so frames stay self-describing and
    /// receivers decode both versions without negotiation state.
    pub const V2_BIT: u8 = 0x20;
    /// [`APP_VECTOR`] with a delta-chained, bit-packed clock (wire v2).
    pub const APP_VECTOR_V2: u8 = APP_VECTOR | V2_BIT;
    /// [`VC_SNAPSHOT`] with a delta-chained, bit-packed clock (wire v2).
    pub const VC_SNAPSHOT_V2: u8 = VC_SNAPSHOT | V2_BIT;
    /// [`VC_TOKEN`] with varint components and 1-bit colours (wire v2,
    /// stateless).
    pub const VC_TOKEN_V2: u8 = VC_TOKEN | V2_BIT;
    /// [`GROUP_TOKEN`] with varint components and 1-bit colours (wire v2,
    /// stateless).
    pub const GROUP_TOKEN_V2: u8 = GROUP_TOKEN | V2_BIT;
    /// Verdict broadcast by the deciding peer.
    pub const VERDICT: u8 = 0xF0;
    /// Orderly teardown marker.
    pub const SHUTDOWN: u8 = 0xF1;
    /// Cumulative acknowledgement of in-order delivery (`aux` carries the
    /// receiver's `next_expected` cursor). Endpoint-internal: consumed
    /// before payload decode, never logged or resequenced.
    pub const ACK: u8 = 0xF2;
    /// Sidecar telemetry: ring-recorder deltas and counter snapshots,
    /// carried outside the reliability window (`seq = CONTROL_SEQ`, `aux`
    /// is the body length) over the un-faulted recovery path so fault
    /// schedules stay bit-identical with telemetry on or off.
    /// Endpoint-internal like [`ACK`]: consumed before payload decode,
    /// never logged, acked, or resequenced, and never counted in the
    /// paper-unit accounting.
    pub const TELEMETRY: u8 = 0xF3;
    /// Wire-version handshake: `aux` advertises the sender's highest
    /// supported wire version. Sent once per link over the un-faulted
    /// recovery path (so fault schedules stay bit-identical either way)
    /// and re-sent after a reconnect. Endpoint-internal like [`ACK`].
    pub const HELLO: u8 = 0xF4;
}

/// Highest wire version this build speaks (and advertises in [`kind::HELLO`]).
pub const WIRE_VERSION: u64 = 2;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the layout said it would.
    Truncated,
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A colour byte outside {0, 1}.
    BadColor(u8),
    /// The body length is inconsistent with the frame kind.
    BadLength(usize),
    /// A group token wider than the 64-process aux bitmap.
    TooWide(usize),
    /// A delta-chained v2 frame reached a stateless decode path; only
    /// the endpoint (which holds the per-link [`ClockChains`]) can
    /// decode it.
    Stateful(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            CodecError::BadColor(c) => write!(f, "invalid colour byte {c}"),
            CodecError::BadLength(n) => write!(f, "body length {n} inconsistent with kind"),
            CodecError::TooWide(n) => {
                write!(
                    f,
                    "group token over {n} processes exceeds the 64-bit aux bitmap"
                )
            }
            CodecError::Stateful(k) => {
                write!(f, "frame kind {k:#04x} needs the link's delta-chain state")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Frame payload: a protocol message or a control-plane marker.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An online detection protocol message.
    Detect(DetectMsg),
    /// The run's verdict, broadcast by the deciding peer so standalone
    /// peers learn the outcome: `Some(g)` is the detected candidate cut
    /// (algorithm-indexed, as in `OnlineDetection::Detected`), `None` is
    /// undetected.
    Verdict(Option<Vec<u64>>),
    /// Orderly teardown: the receiving peer drains and exits.
    Shutdown,
}

/// One wire frame: routing header plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sending peer index (the `seq` resequencing domain).
    pub peer: u32,
    /// Originating actor.
    pub from: ActorId,
    /// Destination actor.
    pub to: ActorId,
    /// Per-link sequence number, assigned by the sending endpoint.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.at).ok_or(CodecError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self.at + 4;
        let bytes = self.buf.get(self.at..end).ok_or(CodecError::Truncated)?;
        self.at = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let end = self.at + 8;
        let bytes = self.buf.get(self.at..end).ok_or(CodecError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::BadLength(self.buf.len()))
        }
    }
}

fn color_byte(c: Color) -> u8 {
    match c {
        Color::Red => 0,
        Color::Green => 1,
    }
}

fn byte_color(b: u8) -> Result<Color, CodecError> {
    match b {
        0 => Ok(Color::Red),
        1 => Ok(Color::Green),
        other => Err(CodecError::BadColor(other)),
    }
}

/// Presence bitmap of a group token's carried candidate clocks (the
/// `aux` value of a `GROUP_TOKEN` frame).
fn group_bitmap(t: &GroupTokenMsg) -> u64 {
    assert!(
        t.g.len() <= 64,
        "group token over {} processes exceeds the 64-bit aux bitmap",
        t.g.len()
    );
    let mut bitmap = 0u64;
    for (i, cand) in t.candidates.iter().enumerate() {
        if cand.is_some() {
            bitmap |= 1 << i;
        }
    }
    bitmap
}

/// `(kind, aux)` of a [`DetectMsg`], computable without encoding the body.
fn detect_kind_aux(msg: &DetectMsg) -> (u8, u64) {
    match msg {
        DetectMsg::App {
            tag: ClockTag::Vector(_),
            ..
        } => (kind::APP_VECTOR, 0),
        DetectMsg::App {
            tag: ClockTag::Scalar(_),
            ..
        } => (kind::APP_SCALAR, 0),
        DetectMsg::VcSnapshot(s) => (kind::VC_SNAPSHOT, s.interval),
        DetectMsg::DdSnapshot(_) => (kind::DD_SNAPSHOT, 0),
        DetectMsg::EndOfTrace => (kind::END_OF_TRACE, 0),
        DetectMsg::VcToken(_) => (kind::VC_TOKEN, 0),
        DetectMsg::DdToken => (kind::DD_TOKEN, 0),
        DetectMsg::Poll { .. } => (kind::POLL, 0),
        DetectMsg::PollReply { .. } => (kind::POLL_REPLY, 0),
        DetectMsg::GroupToken(t) => (kind::GROUP_TOKEN, group_bitmap(t)),
        DetectMsg::MultiRegister { .. } => (kind::MULTI_REGISTER, 0),
        DetectMsg::MultiUnregister { .. } => (kind::MULTI_UNREGISTER, 0),
        DetectMsg::MultiVerdict { .. } => (kind::MULTI_VERDICT, 0),
    }
}

/// Appends a [`DetectMsg`] body (exactly `msg.wire_size()` bytes) to `out`.
fn detect_body_into(msg: &DetectMsg, out: &mut Vec<u8>) {
    match msg {
        DetectMsg::App { msg: id, tag } => {
            put_u64(out, id.as_u64());
            match tag {
                ClockTag::Vector(v) => {
                    for &c in v.as_slice() {
                        put_u64(out, c);
                    }
                }
                ClockTag::Scalar(s) => put_u64(out, *s),
            }
        }
        DetectMsg::VcSnapshot(s) => {
            for &c in s.clock.as_slice() {
                put_u64(out, c);
            }
        }
        DetectMsg::DdSnapshot(s) => {
            put_u64(out, s.clock);
            for d in &s.deps {
                put_u64(out, d.on.index() as u64);
                put_u64(out, d.clock);
            }
        }
        DetectMsg::EndOfTrace | DetectMsg::DdToken => out.push(0),
        DetectMsg::VcToken(t) => {
            for &g in &t.g {
                put_u64(out, g);
            }
            for &c in t.colors() {
                out.push(color_byte(c));
            }
        }
        DetectMsg::Poll { clock, next_red } => {
            put_u64(out, *clock);
            put_u64(out, next_red.map_or(u64::MAX, |p| p.index() as u64));
        }
        DetectMsg::PollReply { became_red } => out.push(u8::from(*became_red)),
        DetectMsg::GroupToken(t) => {
            put_u64(out, t.group as u64);
            for &g in &t.g {
                put_u64(out, g);
            }
            for &c in &t.color {
                out.push(color_byte(c));
            }
            for clock in t.candidates.iter().flatten() {
                for &c in clock.as_slice() {
                    put_u64(out, c);
                }
            }
        }
        DetectMsg::MultiRegister { id, scope } => {
            put_u64(out, *id);
            for &p in scope {
                put_u32(out, p.index() as u32);
            }
        }
        DetectMsg::MultiUnregister { id } => put_u64(out, *id),
        DetectMsg::MultiVerdict { id, verdict } => {
            put_u64(out, *id);
            match verdict {
                Some(g) => {
                    out.push(1);
                    for &v in g {
                        put_u64(out, v);
                    }
                }
                None => out.push(0),
            }
        }
    }
}

/// Encodes a [`DetectMsg`] body, returning `(kind, aux, body)`.
///
/// The body is exactly `msg.wire_size()` bytes; `aux` carries the
/// out-of-band redundancy described in the module docs.
pub fn encode_body(msg: &DetectMsg) -> (u8, u64, Vec<u8>) {
    let (kind_byte, aux) = detect_kind_aux(msg);
    let mut body = Vec::with_capacity(msg.wire_size());
    detect_body_into(msg, &mut body);
    (kind_byte, aux, body)
}

/// Decodes a [`DetectMsg`] body produced by [`encode_body`].
pub fn decode_body(kind_byte: u8, aux: u64, body: &[u8]) -> Result<DetectMsg, CodecError> {
    let mut r = Reader::new(body);
    let msg = match kind_byte {
        kind::APP_VECTOR => {
            let id = MsgId::new(r.u64()?);
            if r.remaining() % 8 != 0 {
                return Err(CodecError::BadLength(body.len()));
            }
            let n = r.remaining() / 8;
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                comps.push(r.u64()?);
            }
            DetectMsg::App {
                msg: id,
                tag: ClockTag::Vector(VectorClock::from_components(comps)),
            }
        }
        kind::APP_SCALAR => DetectMsg::App {
            msg: MsgId::new(r.u64()?),
            tag: ClockTag::Scalar(r.u64()?),
        },
        kind::VC_SNAPSHOT => {
            if body.len() % 8 != 0 {
                return Err(CodecError::BadLength(body.len()));
            }
            let n = body.len() / 8;
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                comps.push(r.u64()?);
            }
            DetectMsg::VcSnapshot(VcSnapshot {
                interval: aux,
                clock: VectorClock::from_components(comps),
            })
        }
        kind::DD_SNAPSHOT => {
            let clock = r.u64()?;
            if r.remaining() % 16 != 0 {
                return Err(CodecError::BadLength(body.len()));
            }
            let deps = (0..r.remaining() / 16)
                .map(|_| {
                    let on = ProcessId::new(r.u64()? as u32);
                    Ok(Dependence::new(on, r.u64()?))
                })
                .collect::<Result<Vec<_>, CodecError>>()?;
            DetectMsg::DdSnapshot(DdSnapshot { clock, deps })
        }
        kind::END_OF_TRACE => {
            r.u8()?;
            DetectMsg::EndOfTrace
        }
        kind::VC_TOKEN => {
            if body.len() % 9 != 0 {
                return Err(CodecError::BadLength(body.len()));
            }
            let n = body.len() / 9;
            let mut token = Token::new(n);
            for g in token.g.iter_mut() {
                *g = r.u64()?;
            }
            for i in 0..n {
                let c = byte_color(r.u8()?)?;
                token.set_color(i, c);
            }
            DetectMsg::VcToken(token)
        }
        kind::DD_TOKEN => {
            r.u8()?;
            DetectMsg::DdToken
        }
        kind::POLL => {
            let clock = r.u64()?;
            let raw = r.u64()?;
            DetectMsg::Poll {
                clock,
                next_red: (raw != u64::MAX).then(|| ProcessId::new(raw as u32)),
            }
        }
        kind::POLL_REPLY => DetectMsg::PollReply {
            became_red: r.u8()? != 0,
        },
        kind::GROUP_TOKEN => {
            let group = r.u64()? as usize;
            let k = aux.count_ones() as usize;
            // body = 8 + 9n + 8nk with n scope processes and k carried
            // scope-width candidate clocks.
            let rest = r.remaining();
            if (9 + 8 * k) == 0 || rest % (9 + 8 * k) != 0 {
                return Err(CodecError::BadLength(body.len()));
            }
            let n = rest / (9 + 8 * k);
            if n > 64 || aux.checked_shr(n as u32).map_or(false, |high| high != 0) {
                return Err(CodecError::TooWide(n));
            }
            let mut t = GroupTokenMsg::new(group, n);
            for g in t.g.iter_mut() {
                *g = r.u64()?;
            }
            for c in t.color.iter_mut() {
                *c = byte_color(r.u8()?)?;
            }
            for i in 0..n {
                if aux & (1 << i) != 0 {
                    let mut comps = Vec::with_capacity(n);
                    for _ in 0..n {
                        comps.push(r.u64()?);
                    }
                    t.candidates[i] = Some(VectorClock::from_components(comps));
                }
            }
            DetectMsg::GroupToken(t)
        }
        kind::MULTI_REGISTER => {
            let id = r.u64()?;
            if r.remaining() % 4 != 0 {
                return Err(CodecError::BadLength(body.len()));
            }
            let scope = (0..r.remaining() / 4)
                .map(|_| Ok(ProcessId::new(r.u32()?)))
                .collect::<Result<Vec<_>, CodecError>>()?;
            DetectMsg::MultiRegister { id, scope }
        }
        kind::MULTI_UNREGISTER => DetectMsg::MultiUnregister { id: r.u64()? },
        kind::MULTI_VERDICT => {
            let id = r.u64()?;
            let flag = r.u8()?;
            if r.remaining() % 8 != 0 || (flag == 0 && r.remaining() != 0) {
                return Err(CodecError::BadLength(body.len()));
            }
            let verdict = if flag == 0 {
                None
            } else {
                Some(
                    (0..r.remaining() / 8)
                        .map(|_| r.u64())
                        .collect::<Result<Vec<_>, CodecError>>()?,
                )
            };
            DetectMsg::MultiVerdict { id, verdict }
        }
        // Stateless v2 bodies: varint-packed, decodable without chain
        // state (early return — they use the bit reader, not `r`).
        kind::VC_TOKEN_V2 => return decode_vc_token_v2(body),
        kind::GROUP_TOKEN_V2 => return decode_group_token_v2(aux, body),
        // Delta-chained v2 bodies never decode statelessly; the endpoint
        // decodes them at in-sequence promotion with the link's chains.
        kind::APP_VECTOR_V2 | kind::VC_SNAPSHOT_V2 => return Err(CodecError::Stateful(kind_byte)),
        other => return Err(CodecError::BadKind(other)),
    };
    r.done()?;
    Ok(msg)
}

/// Decodes a stateless v2 token body: varint `n`, `n` varint `G`
/// components, `n` colour bits.
fn decode_vc_token_v2(body: &[u8]) -> Result<DetectMsg, CodecError> {
    let mut r = BitReader::new(body);
    let n = r.read_varint()? as usize;
    if n > r.bits_remaining() / 9 {
        return Err(CodecError::BadLength(n));
    }
    let mut token = Token::new(n);
    for g in token.g.iter_mut() {
        *g = r.read_varint()?;
    }
    for i in 0..n {
        let c = if r.read_bit()? {
            Color::Green
        } else {
            Color::Red
        };
        token.set_color(i, c);
    }
    r.expect_padding()?;
    Ok(DetectMsg::VcToken(token))
}

/// Decodes a stateless v2 group-token body: varint group, varint `n`,
/// `n` varint `G` components, `n` colour bits, then one varint clock per
/// set bit of the `aux` presence bitmap (same bitmap as v1).
fn decode_group_token_v2(aux: u64, body: &[u8]) -> Result<DetectMsg, CodecError> {
    let mut r = BitReader::new(body);
    let group = r.read_varint()? as usize;
    let n = r.read_varint()? as usize;
    if n > r.bits_remaining() / 9 {
        return Err(CodecError::BadLength(n));
    }
    if n > 64 || aux.checked_shr(n as u32).map_or(false, |high| high != 0) {
        return Err(CodecError::TooWide(n));
    }
    let mut t = GroupTokenMsg::new(group, n);
    for g in t.g.iter_mut() {
        *g = r.read_varint()?;
    }
    for c in t.color.iter_mut() {
        *c = if r.read_bit()? {
            Color::Green
        } else {
            Color::Red
        };
    }
    for i in 0..n {
        if aux & (1 << i) != 0 {
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                comps.push(r.read_varint()?);
            }
            t.candidates[i] = Some(VectorClock::from_components(comps));
        }
    }
    r.expect_padding()?;
    Ok(DetectMsg::GroupToken(t))
}

/// Byte offset of a frame's body within the full frame bytes (length
/// prefix + fixed header).
pub const BODY_START: usize = 4 + HEADER_LEN;

/// Sequence number carried by frames outside the reliability window
/// (acknowledgements): never deduplicated, resequenced, logged, or acked.
pub const CONTROL_SEQ: u64 = u64::MAX;

/// Appends a whole encoded frame (length prefix included) to `out`,
/// without intermediate buffers — the batched send path encodes straight
/// into a link's outbound batch.
pub fn encode_frame_into(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, 0); // length placeholder, patched below
    let (kind_byte, aux) = match &frame.payload {
        Payload::Detect(msg) => detect_kind_aux(msg),
        Payload::Verdict(_) => (kind::VERDICT, 0),
        Payload::Shutdown => (kind::SHUTDOWN, 0),
    };
    out.push(kind_byte);
    put_u32(out, frame.peer);
    put_u32(out, frame.from.index() as u32);
    put_u32(out, frame.to.index() as u32);
    put_u64(out, frame.seq);
    put_u64(out, aux);
    match &frame.payload {
        Payload::Detect(msg) => detect_body_into(msg, out),
        Payload::Verdict(verdict) => match verdict {
            Some(g) => {
                out.push(1);
                put_u64(out, g.len() as u64);
                for &v in g {
                    put_u64(out, v);
                }
            }
            None => out.push(0),
        },
        Payload::Shutdown => {}
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes a whole frame, length prefix included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(frame, &mut out);
    out
}

/// How [`encode_frame_into_v2`] put a frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireEncoding {
    /// No v2 form for this payload — encoded exactly as v1.
    V1,
    /// Stateless bit-packed v2 body (tokens).
    Packed,
    /// Delta-chain keyframe (full clock, varint-packed).
    Keyframe,
    /// Delta-chain delta frame (changed bitmap + varint deltas).
    Delta,
}

/// The v2 kind byte of a [`DetectMsg`] that has a v2 encoding. `O(1)`
/// bodies gain nothing from bit packing and stay v1 on every link.
fn detect_kind_v2(msg: &DetectMsg) -> Option<u8> {
    match msg {
        DetectMsg::App {
            tag: ClockTag::Vector(_),
            ..
        } => Some(kind::APP_VECTOR_V2),
        DetectMsg::VcSnapshot(_) => Some(kind::VC_SNAPSHOT_V2),
        DetectMsg::VcToken(_) => Some(kind::VC_TOKEN_V2),
        DetectMsg::GroupToken(_) => Some(kind::GROUP_TOKEN_V2),
        _ => None,
    }
}

/// Appends a frame encoded under wire v2 (length prefix included),
/// advancing `chains` for delta-chained bodies. Payloads with no v2 form
/// fall back to [`encode_frame_into`] byte for byte. The bit-packed body
/// is written straight into `out`, so the batched send path stays
/// allocation-free.
pub fn encode_frame_into_v2(
    frame: &Frame,
    chains: &mut ClockChains,
    out: &mut Vec<u8>,
) -> WireEncoding {
    let msg = match &frame.payload {
        Payload::Detect(msg) => msg,
        _ => {
            encode_frame_into(frame, out);
            return WireEncoding::V1;
        }
    };
    let Some(kind2) = detect_kind_v2(msg) else {
        encode_frame_into(frame, out);
        return WireEncoding::V1;
    };
    let (_, aux) = detect_kind_aux(msg);
    let start = out.len();
    put_u32(out, 0); // length placeholder, patched below
    out.push(kind2);
    put_u32(out, frame.peer);
    put_u32(out, frame.from.index() as u32);
    put_u32(out, frame.to.index() as u32);
    put_u64(out, frame.seq);
    put_u64(out, aux);
    let from = frame.from.index() as u32;
    let mut w = BitWriter::new(out);
    let encoding = match msg {
        DetectMsg::App {
            msg: id,
            tag: ClockTag::Vector(v),
        } => {
            w.write_varint(id.as_u64());
            match chains.encode_clock(from, CLASS_APP, v.as_slice(), &mut w) {
                ChainFrame::Keyframe => WireEncoding::Keyframe,
                ChainFrame::Delta => WireEncoding::Delta,
            }
        }
        DetectMsg::VcSnapshot(s) => {
            match chains.encode_clock(from, CLASS_SNAPSHOT, s.clock.as_slice(), &mut w) {
                ChainFrame::Keyframe => WireEncoding::Keyframe,
                ChainFrame::Delta => WireEncoding::Delta,
            }
        }
        DetectMsg::VcToken(t) => {
            w.write_varint(t.g.len() as u64);
            for &g in &t.g {
                w.write_varint(g);
            }
            for &c in t.colors() {
                w.write_bit(c == Color::Green);
            }
            WireEncoding::Packed
        }
        DetectMsg::GroupToken(t) => {
            w.write_varint(t.group as u64);
            w.write_varint(t.g.len() as u64);
            for &g in &t.g {
                w.write_varint(g);
            }
            for &c in &t.color {
                w.write_bit(c == Color::Green);
            }
            for clock in t.candidates.iter().flatten() {
                for &c in clock.as_slice() {
                    w.write_varint(c);
                }
            }
            WireEncoding::Packed
        }
        _ => unreachable!("detect_kind_v2 gated the payload"),
    };
    w.finish();
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    encoding
}

/// A delta-chained v2 body reconstructed by the receiving endpoint at
/// in-sequence promotion (the only point where the link's chain state
/// may legally advance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedV2 {
    /// `VC_SNAPSHOT_V2`: the full reconstructed clock as little-endian
    /// bytes — exactly the v1 body layout, arena-ready for
    /// `SnapshotBuffer::push_le_bytes`.
    SnapshotClock(Vec<u8>),
    /// `APP_VECTOR_V2`: the message id and reconstructed clock.
    AppVector(MsgId, VectorClock),
}

/// Decodes a delta-chained v2 body (`APP_VECTOR_V2` / `VC_SNAPSHOT_V2`),
/// advancing the receiver-side `chains` exactly as the sender did.
pub fn decode_stateful_v2(
    head: &WireHeader,
    body: &[u8],
    chains: &mut ClockChains,
) -> Result<DecodedV2, CodecError> {
    let from = head.from.index() as u32;
    let mut r = BitReader::new(body);
    match head.kind {
        kind::APP_VECTOR_V2 => {
            let id = MsgId::new(r.read_varint()?);
            let clock = chains.decode_clock(from, CLASS_APP, &mut r)?;
            r.expect_padding()?;
            Ok(DecodedV2::AppVector(
                id,
                VectorClock::from_components(clock),
            ))
        }
        kind::VC_SNAPSHOT_V2 => {
            let clock = chains.decode_clock(from, CLASS_SNAPSHOT, &mut r)?;
            r.expect_padding()?;
            let mut le = Vec::with_capacity(clock.len() * 8);
            for &c in &clock {
                le.extend_from_slice(&c.to_le_bytes());
            }
            Ok(DecodedV2::SnapshotClock(le))
        }
        other => Err(CodecError::BadKind(other)),
    }
}

/// Appends a wire-version handshake frame to `out`: `aux` advertises the
/// sender's highest supported wire version, with an empty body. Carried
/// with `seq = CONTROL_SEQ` over the un-faulted recovery path, like acks.
pub fn encode_hello_into(me: u32, version: u64, out: &mut Vec<u8>) {
    put_u32(out, HEADER_LEN as u32);
    out.push(kind::HELLO);
    put_u32(out, me);
    put_u32(out, 0); // from/to unused: hellos never reach an actor
    put_u32(out, 0);
    put_u64(out, CONTROL_SEQ);
    put_u64(out, version);
}

/// Appends a cumulative-acknowledgement frame to `out`: `next_expected`
/// is the receiver's in-order delivery cursor for the `peer → me` link,
/// carried in `aux` with an empty body.
pub fn encode_ack_into(me: u32, next_expected: u64, out: &mut Vec<u8>) {
    put_u32(out, HEADER_LEN as u32);
    out.push(kind::ACK);
    put_u32(out, me);
    put_u32(out, 0); // from/to unused: acks never reach an actor
    put_u32(out, 0);
    put_u64(out, CONTROL_SEQ);
    put_u64(out, next_expected);
}

/// Appends a sidecar telemetry frame to `out`: `body` is an opaque blob
/// (JSONL-framed recorder deltas plus a counter snapshot), carried with
/// `seq = CONTROL_SEQ` and its length mirrored in `aux`.
pub fn encode_telemetry_into(me: u32, body: &[u8], out: &mut Vec<u8>) {
    put_u32(out, (HEADER_LEN + body.len()) as u32);
    out.push(kind::TELEMETRY);
    put_u32(out, me);
    put_u32(out, 0); // from/to unused: telemetry never reaches an actor
    put_u32(out, 0);
    put_u64(out, CONTROL_SEQ);
    put_u64(out, body.len() as u64);
    out.extend_from_slice(body);
}

/// The fixed routing header of one frame, decoded without touching the
/// body — receivers route and resequence on this alone, deferring payload
/// decode to delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Frame kind byte (see [`kind`]).
    pub kind: u8,
    /// Sending peer index (the `seq` resequencing domain).
    pub peer: u32,
    /// Originating actor.
    pub from: ActorId,
    /// Destination actor.
    pub to: ActorId,
    /// Per-link sequence number.
    pub seq: u64,
    /// Out-of-band auxiliary value (snapshot interval, group bitmap, or
    /// ack cursor).
    pub aux: u64,
}

/// Total on-wire length (length prefix included) of the frame starting at
/// byte `at` of `buf`, if the 4-byte prefix is fully present.
pub fn frame_len_at(buf: &[u8], at: usize) -> Option<usize> {
    let bytes = buf.get(at..at.checked_add(4)?)?;
    Some(4 + u32::from_le_bytes(bytes.try_into().unwrap()) as usize)
}

/// Decodes the fixed header of a buffer holding exactly one frame.
pub fn decode_header(frame: &[u8]) -> Result<WireHeader, CodecError> {
    let mut r = Reader::new(frame);
    let len = r.u32()? as usize;
    if r.remaining() != len || len < HEADER_LEN {
        return Err(CodecError::BadLength(len));
    }
    Ok(WireHeader {
        kind: r.u8()?,
        peer: r.u32()?,
        from: ActorId::new(r.u32()?),
        to: ActorId::new(r.u32()?),
        seq: r.u64()?,
        aux: r.u64()?,
    })
}

/// Decodes a frame body — control or detect — given its kind and aux.
///
/// [`kind::ACK`] frames carry no payload and are rejected here: endpoints
/// consume them during ingest, before payload decode.
pub fn decode_payload(kind_byte: u8, aux: u64, body: &[u8]) -> Result<Payload, CodecError> {
    Ok(match kind_byte {
        kind::VERDICT => {
            let mut br = Reader::new(body);
            match br.u8()? {
                0 => Payload::Verdict(None),
                _ => {
                    let count = br.u64()? as usize;
                    let mut g = Vec::with_capacity(count);
                    for _ in 0..count {
                        g.push(br.u64()?);
                    }
                    Payload::Verdict(Some(g))
                }
            }
        }
        kind::SHUTDOWN => Payload::Shutdown,
        detect => Payload::Detect(decode_body(detect, aux, body)?),
    })
}

/// Decodes one frame from a buffer that contains exactly one frame
/// (length prefix included).
pub fn decode_frame(buf: &[u8]) -> Result<Frame, CodecError> {
    let h = decode_header(buf)?;
    let payload = decode_payload(h.kind, h.aux, &buf[BODY_START..])?;
    Ok(Frame {
        peer: h.peer,
        from: h.from,
        to: h.to,
        seq: h.seq,
        payload,
    })
}

/// Reads one length-prefixed frame (raw bytes, prefix included) from a
/// stream. Returns `Ok(None)` on clean end-of-stream.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut buf = vec![0u8; 4 + len];
    buf[..4].copy_from_slice(&len_bytes);
    r.read_exact(&mut buf[4..])?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: Payload) -> Frame {
        Frame {
            peer: 3,
            from: ActorId::new(7),
            to: ActorId::new(11),
            seq: 42,
            payload,
        }
    }

    #[test]
    fn detect_body_length_equals_wire_size() {
        let msg = DetectMsg::VcSnapshot(VcSnapshot {
            interval: 5,
            clock: VectorClock::from_components(vec![1, 2, 3]),
        });
        let (_, aux, body) = encode_body(&msg);
        assert_eq!(body.len(), msg.wire_size());
        assert_eq!(aux, 5, "interval rides in aux, outside the accounted body");
    }

    #[test]
    fn frame_roundtrips() {
        for payload in [
            Payload::Detect(DetectMsg::EndOfTrace),
            Payload::Detect(DetectMsg::DdToken),
            Payload::Verdict(Some(vec![2, 9, 4])),
            Payload::Verdict(None),
            Payload::Shutdown,
        ] {
            let f = frame(payload);
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn read_frame_handles_stream_and_eof() {
        let f = frame(Payload::Detect(DetectMsg::PollReply { became_red: true }));
        let bytes = encode_frame(&f);
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&bytes);
        stream.extend_from_slice(&bytes);
        let mut cursor = io::Cursor::new(stream);
        let first = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_frame(&first).unwrap(), f);
        let second = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(first, second);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn header_decode_and_frame_len_agree_with_full_decode() {
        let f = frame(Payload::Detect(DetectMsg::VcSnapshot(VcSnapshot {
            interval: 9,
            clock: VectorClock::from_components(vec![4, 9]),
        })));
        let bytes = encode_frame(&f);
        assert_eq!(frame_len_at(&bytes, 0), Some(bytes.len()));
        assert_eq!(
            frame_len_at(&bytes, bytes.len() - 3),
            None,
            "partial prefix"
        );
        let h = decode_header(&bytes).unwrap();
        assert_eq!(h.kind, kind::VC_SNAPSHOT);
        assert_eq!(
            (h.peer, h.from, h.to, h.seq, h.aux),
            (3, f.from, f.to, 42, 9)
        );
        assert_eq!(
            decode_payload(h.kind, h.aux, &bytes[BODY_START..]).unwrap(),
            f.payload
        );
    }

    #[test]
    fn in_place_encoding_matches_allocating_encoding() {
        let frames = [
            frame(Payload::Detect(DetectMsg::VcToken(Token::new(3)))),
            frame(Payload::Verdict(Some(vec![1, 2]))),
            frame(Payload::Shutdown),
        ];
        let mut batch = Vec::new();
        for f in &frames {
            encode_frame_into(f, &mut batch);
        }
        let mut at = 0;
        for f in &frames {
            let len = frame_len_at(&batch, at).unwrap();
            assert_eq!(&batch[at..at + len], encode_frame(f).as_slice());
            at += len;
        }
        assert_eq!(at, batch.len());
    }

    #[test]
    fn ack_frames_carry_the_cursor_in_aux() {
        let mut bytes = Vec::new();
        encode_ack_into(2, 640, &mut bytes);
        assert_eq!(frame_len_at(&bytes, 0), Some(bytes.len()));
        let h = decode_header(&bytes).unwrap();
        assert_eq!(h.kind, kind::ACK);
        assert_eq!(h.peer, 2);
        assert_eq!(h.seq, CONTROL_SEQ);
        assert_eq!(h.aux, 640);
        assert!(decode_payload(h.kind, h.aux, &bytes[BODY_START..]).is_err());
    }

    #[test]
    fn telemetry_frames_carry_an_opaque_body_outside_the_payload_codec() {
        let body = br#"{"seq":0,"monitor":1,"event":"DetectionExhausted"}"#;
        let mut bytes = Vec::new();
        encode_telemetry_into(4, body, &mut bytes);
        assert_eq!(frame_len_at(&bytes, 0), Some(bytes.len()));
        let h = decode_header(&bytes).unwrap();
        assert_eq!(h.kind, kind::TELEMETRY);
        assert_eq!(h.peer, 4);
        assert_eq!(h.seq, CONTROL_SEQ);
        assert_eq!(h.aux, body.len() as u64);
        assert_eq!(&bytes[BODY_START..], body.as_slice());
        assert!(
            decode_payload(h.kind, h.aux, &bytes[BODY_START..]).is_err(),
            "telemetry is endpoint-internal, not a protocol payload"
        );
    }

    #[test]
    fn v2_tokens_roundtrip_statelessly_and_pack_tighter() {
        let mut token = Token::new(5);
        token.g = vec![0, 3, 120, 4000, 1];
        token.set_color(2, Color::Green);
        let mut group = GroupTokenMsg::new(1, 3);
        group.g = vec![9, 0, 2];
        group.color[1] = Color::Green;
        group.candidates[2] = Some(VectorClock::from_components(vec![4, 5, 6]));
        for msg in [DetectMsg::VcToken(token), DetectMsg::GroupToken(group)] {
            let f = frame(Payload::Detect(msg.clone()));
            let mut chains = ClockChains::new();
            let mut v2 = Vec::new();
            let enc = encode_frame_into_v2(&f, &mut chains, &mut v2);
            assert_eq!(enc, WireEncoding::Packed);
            assert_eq!(decode_frame(&v2).unwrap(), f, "stateless v2 decode");
            assert!(v2.len() < encode_frame(&f).len(), "packs tighter than v1");
        }
    }

    #[test]
    fn v2_delta_chains_need_the_endpoint_and_reconstruct_v1_bodies() {
        let snapshots = [vec![1, 2, 3], vec![1, 3, 3], vec![u64::MAX, 3, 4]];
        let mut enc_chains = ClockChains::new();
        let mut dec_chains = ClockChains::new();
        for (i, clock) in snapshots.iter().enumerate() {
            let msg = DetectMsg::VcSnapshot(VcSnapshot {
                interval: i as u64,
                clock: VectorClock::from_components(clock.clone()),
            });
            let f = frame(Payload::Detect(msg.clone()));
            let mut v2 = Vec::new();
            let enc = encode_frame_into_v2(&f, &mut enc_chains, &mut v2);
            assert_eq!(
                enc,
                if i == 0 {
                    WireEncoding::Keyframe
                } else {
                    WireEncoding::Delta
                }
            );
            let h = decode_header(&v2).unwrap();
            assert_eq!(h.kind, kind::VC_SNAPSHOT_V2);
            assert_eq!(h.aux, i as u64, "interval still rides in aux");
            assert!(
                matches!(
                    decode_payload(h.kind, h.aux, &v2[BODY_START..]),
                    Err(CodecError::Stateful(_))
                ),
                "delta frames refuse stateless decode"
            );
            let decoded = decode_stateful_v2(&h, &v2[BODY_START..], &mut dec_chains).unwrap();
            let (_, _, v1_body) = encode_body(&msg);
            assert_eq!(
                decoded,
                DecodedV2::SnapshotClock(v1_body),
                "reconstruction is the exact v1 (paper-unit) body"
            );
        }
    }

    #[test]
    fn v2_app_vectors_roundtrip_and_scalars_fall_back_to_v1() {
        let mut chains = ClockChains::new();
        let mut dec_chains = ClockChains::new();
        let vec_msg = DetectMsg::App {
            msg: MsgId::new(77),
            tag: ClockTag::Vector(VectorClock::from_components(vec![5, 0, 9])),
        };
        let f = frame(Payload::Detect(vec_msg));
        let mut v2 = Vec::new();
        encode_frame_into_v2(&f, &mut chains, &mut v2);
        let h = decode_header(&v2).unwrap();
        assert_eq!(h.kind, kind::APP_VECTOR_V2);
        let decoded = decode_stateful_v2(&h, &v2[BODY_START..], &mut dec_chains).unwrap();
        assert_eq!(
            decoded,
            DecodedV2::AppVector(MsgId::new(77), VectorClock::from_components(vec![5, 0, 9]))
        );
        // O(1) payloads gain nothing from bit packing: byte-identical v1.
        for payload in [
            Payload::Detect(DetectMsg::App {
                msg: MsgId::new(3),
                tag: ClockTag::Scalar(9),
            }),
            Payload::Detect(DetectMsg::EndOfTrace),
            Payload::Detect(DetectMsg::DdToken),
            Payload::Verdict(None),
            Payload::Shutdown,
        ] {
            let f = frame(payload);
            let mut v2 = Vec::new();
            let enc = encode_frame_into_v2(&f, &mut chains, &mut v2);
            assert_eq!(enc, WireEncoding::V1);
            assert_eq!(v2, encode_frame(&f));
        }
    }

    #[test]
    fn hello_frames_advertise_the_version_in_aux() {
        let mut bytes = Vec::new();
        encode_hello_into(6, WIRE_VERSION, &mut bytes);
        assert_eq!(frame_len_at(&bytes, 0), Some(bytes.len()));
        let h = decode_header(&bytes).unwrap();
        assert_eq!(h.kind, kind::HELLO);
        assert_eq!(h.peer, 6);
        assert_eq!(h.seq, CONTROL_SEQ);
        assert_eq!(h.aux, WIRE_VERSION);
        assert!(decode_payload(h.kind, h.aux, &bytes[BODY_START..]).is_err());
    }

    #[test]
    fn truncated_and_bogus_frames_are_rejected() {
        let f = frame(Payload::Detect(DetectMsg::EndOfTrace));
        let mut bytes = encode_frame(&f);
        bytes.pop();
        assert!(decode_frame(&bytes).is_err());
        let mut bad_kind = encode_frame(&f);
        bad_kind[4] = 0x7F;
        assert!(matches!(
            decode_frame(&bad_kind),
            Err(CodecError::BadKind(0x7F))
        ));
        let token = DetectMsg::VcToken(Token::new(2));
        let mut bad_color = encode_frame(&frame(Payload::Detect(token)));
        *bad_color.last_mut().unwrap() = 9;
        assert!(matches!(
            decode_frame(&bad_color),
            Err(CodecError::BadColor(9))
        ));
    }
}

//! Transport-level counters, shared across peer threads and fault
//! workers, and their plain snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live atomic counters of one net run (all peers and links combined).
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Frames sent (first transmissions only).
    pub frames_sent: AtomicU64,
    /// Bytes sent in first transmissions (header + body).
    pub bytes_sent: AtomicU64,
    /// Frames received and accepted (post-dedup).
    pub frames_received: AtomicU64,
    /// Bytes received in accepted frames.
    pub bytes_received: AtomicU64,
    /// Frames transmitted again (fault recovery or log replay).
    pub retransmits: AtomicU64,
    /// Connections re-established after an error.
    pub reconnects: AtomicU64,
    /// Duplicate frames dropped by receivers.
    pub duplicates_dropped: AtomicU64,
    /// Frames that arrived ahead of a gap and were held for resequencing.
    pub reordered: AtomicU64,
}

impl NetCounters {
    /// A fresh shared counter block.
    pub fn shared() -> Arc<Self> {
        Arc::new(NetCounters::default())
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`NetCounters`] at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames sent (first transmissions only).
    pub frames_sent: u64,
    /// Bytes sent in first transmissions (header + body).
    pub bytes_sent: u64,
    /// Frames received and accepted (post-dedup).
    pub frames_received: u64,
    /// Bytes received in accepted frames.
    pub bytes_received: u64,
    /// Frames transmitted again (fault recovery or log replay).
    pub retransmits: u64,
    /// Connections re-established after an error.
    pub reconnects: u64,
    /// Duplicate frames dropped by receivers.
    pub duplicates_dropped: u64,
    /// Frames that arrived ahead of a gap and were held for resequencing.
    pub reordered: u64,
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} frames / {} B sent, {} frames / {} B received, \
             {} retransmits, {} reconnects, {} dups dropped, {} reordered",
            self.frames_sent,
            self.bytes_sent,
            self.frames_received,
            self.bytes_received,
            self.retransmits,
            self.reconnects,
            self.duplicates_dropped,
            self.reordered
        )
    }
}

//! Transport-level counters, shared across peer threads and fault
//! workers, and their plain snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live atomic counters of one net run (all peers and links combined).
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Frames sent (first transmissions only).
    pub frames_sent: AtomicU64,
    /// Bytes sent in first transmissions (header + body).
    pub bytes_sent: AtomicU64,
    /// Frames received and accepted (post-dedup).
    pub frames_received: AtomicU64,
    /// Bytes received in accepted frames.
    pub bytes_received: AtomicU64,
    /// Frames transmitted again (fault recovery or log replay).
    pub retransmits: AtomicU64,
    /// Connections re-established after an error.
    pub reconnects: AtomicU64,
    /// Duplicate frames dropped by receivers.
    pub duplicates_dropped: AtomicU64,
    /// Frames that arrived ahead of a gap and were held for resequencing.
    pub reordered: AtomicU64,
    /// Coalesced batch writes handed to transports.
    pub batch_flushes: AtomicU64,
    /// High-watermark: largest single batch flushed, in bytes.
    pub max_batch_bytes: AtomicU64,
    /// High-watermark: deepest in-order ready queue at any receiver (the
    /// backpressure measure — how far a slow consumer fell behind).
    pub max_ready_depth: AtomicU64,
    /// Cumulative acknowledgements sent (not counted as `frames_sent`).
    pub acks_sent: AtomicU64,
    /// Cumulative acknowledgements received and applied to send logs.
    pub acks_received: AtomicU64,
    /// Fresh buffer allocations by the frame pool (free list empty).
    pub pool_allocs: AtomicU64,
    /// Buffer checkouts served by recycling a returned buffer.
    pub pool_reuses: AtomicU64,
    /// Sidecar telemetry frames sent (not counted as `frames_sent`).
    pub telemetry_sent: AtomicU64,
    /// Sidecar telemetry frames received and collected.
    pub telemetry_received: AtomicU64,
    /// Bytes of telemetry bodies shipped (outside paper accounting).
    pub telemetry_bytes: AtomicU64,
    /// What every sent frame would have cost under wire v1 (a `Detect`
    /// body is exactly `wire_size()` bytes there). Counted on both wire
    /// versions, so `bytes_sent / wire_bytes_v1_equiv` is the v2
    /// compression ratio (1.0 on a pure-v1 run).
    pub wire_bytes_v1_equiv: AtomicU64,
    /// Wire-v2 delta frames sent (changed bitmap + varint deltas).
    pub delta_frames_sent: AtomicU64,
    /// Wire-v2 full-clock keyframes sent.
    pub keyframes_sent: AtomicU64,
    /// Multi-tenant service: predicate sessions currently registered.
    pub multi_sessions_active: AtomicU64,
    /// Multi-tenant service: per-session event deliveries routed so far.
    pub multi_routed_events: AtomicU64,
    /// Multi-tenant service: sessions resolved `Detected`.
    pub multi_detections: AtomicU64,
}

impl NetCounters {
    /// A fresh shared counter block.
    pub fn shared() -> Arc<Self> {
        Arc::new(NetCounters::default())
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            batch_flushes: self.batch_flushes.load(Ordering::Relaxed),
            max_batch_bytes: self.max_batch_bytes.load(Ordering::Relaxed),
            max_ready_depth: self.max_ready_depth.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            acks_received: self.acks_received.load(Ordering::Relaxed),
            pool_allocs: self.pool_allocs.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            telemetry_sent: self.telemetry_sent.load(Ordering::Relaxed),
            telemetry_received: self.telemetry_received.load(Ordering::Relaxed),
            telemetry_bytes: self.telemetry_bytes.load(Ordering::Relaxed),
            wire_bytes_v1_equiv: self.wire_bytes_v1_equiv.load(Ordering::Relaxed),
            delta_frames_sent: self.delta_frames_sent.load(Ordering::Relaxed),
            keyframes_sent: self.keyframes_sent.load(Ordering::Relaxed),
            multi_sessions_active: self.multi_sessions_active.load(Ordering::Relaxed),
            multi_routed_events: self.multi_routed_events.load(Ordering::Relaxed),
            multi_detections: self.multi_detections.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`NetCounters`] at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames sent (first transmissions only).
    pub frames_sent: u64,
    /// Bytes sent in first transmissions (header + body).
    pub bytes_sent: u64,
    /// Frames received and accepted (post-dedup).
    pub frames_received: u64,
    /// Bytes received in accepted frames.
    pub bytes_received: u64,
    /// Frames transmitted again (fault recovery or log replay).
    pub retransmits: u64,
    /// Connections re-established after an error.
    pub reconnects: u64,
    /// Duplicate frames dropped by receivers.
    pub duplicates_dropped: u64,
    /// Frames that arrived ahead of a gap and were held for resequencing.
    pub reordered: u64,
    /// Coalesced batch writes handed to transports.
    pub batch_flushes: u64,
    /// High-watermark: largest single batch flushed, in bytes.
    pub max_batch_bytes: u64,
    /// High-watermark: deepest in-order ready queue at any receiver.
    pub max_ready_depth: u64,
    /// Cumulative acknowledgements sent (not counted as `frames_sent`).
    pub acks_sent: u64,
    /// Cumulative acknowledgements received and applied to send logs.
    pub acks_received: u64,
    /// Fresh buffer allocations by the frame pool (free list empty).
    pub pool_allocs: u64,
    /// Buffer checkouts served by recycling a returned buffer.
    pub pool_reuses: u64,
    /// Sidecar telemetry frames sent (not counted as `frames_sent`).
    pub telemetry_sent: u64,
    /// Sidecar telemetry frames received and collected.
    pub telemetry_received: u64,
    /// Bytes of telemetry bodies shipped (outside paper accounting).
    pub telemetry_bytes: u64,
    /// What every sent frame would have cost under wire v1; see
    /// [`NetCounters::wire_bytes_v1_equiv`].
    pub wire_bytes_v1_equiv: u64,
    /// Wire-v2 delta frames sent (changed bitmap + varint deltas).
    pub delta_frames_sent: u64,
    /// Wire-v2 full-clock keyframes sent.
    pub keyframes_sent: u64,
    /// Multi-tenant service: predicate sessions registered at snapshot.
    pub multi_sessions_active: u64,
    /// Multi-tenant service: per-session event deliveries routed.
    pub multi_routed_events: u64,
    /// Multi-tenant service: sessions resolved `Detected`.
    pub multi_detections: u64,
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} frames / {} B sent, {} frames / {} B received, \
             {} retransmits, {} reconnects, {} dups dropped, {} reordered, \
             {} flushes (max {} B), ready depth ≤ {}, {} acks out / {} in, \
             pool {} allocs / {} reuses, telemetry {} out / {} in ({} B), \
             wire {} B v1-equiv ({} keyframes / {} deltas), \
             multi {} sessions / {} routed / {} detections",
            self.frames_sent,
            self.bytes_sent,
            self.frames_received,
            self.bytes_received,
            self.retransmits,
            self.reconnects,
            self.duplicates_dropped,
            self.reordered,
            self.batch_flushes,
            self.max_batch_bytes,
            self.max_ready_depth,
            self.acks_sent,
            self.acks_received,
            self.pool_allocs,
            self.pool_reuses,
            self.telemetry_sent,
            self.telemetry_received,
            self.telemetry_bytes,
            self.wire_bytes_v1_equiv,
            self.keyframes_sent,
            self.delta_frames_sent,
            self.multi_sessions_active,
            self.multi_routed_events,
            self.multi_detections
        )
    }
}

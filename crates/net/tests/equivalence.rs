//! Acceptance tests for the net subsystem: a detection run over real TCP
//! sockets on localhost yields a `Detection` bit-identical to the
//! discrete-event simulator's for the same computation — for both the
//! vector-clock token and direct-dependence detectors, on clean links and
//! under a tolerated delay + duplicate + reorder fault schedule.
//!
//! This is the paper's uniqueness property made operational: the first
//! consistent cut satisfying a WCP is a function of the computation alone,
//! so no amount of (masked) transport nondeterminism may change it.

use std::sync::Arc;
use std::time::Duration;

use wcp_detect::online::{run_direct, run_vc_token};
use wcp_detect::{audit_bounds, BoundLimits, Detection};
use wcp_net::{run_direct_net, run_vc_token_net, run_vc_token_net_recorded, NetConfig};
use wcp_obs::{merge_streams, split_by_monitor, RingRecorder, StampedEvent};
use wcp_sim::{FaultConfig, SimConfig};
use wcp_trace::generate::{generate, GeneratorConfig};
use wcp_trace::{Computation, Wcp};

fn workload(seed: u64) -> Computation {
    generate(
        &GeneratorConfig::new(4, 10)
            .with_seed(seed)
            .with_predicate_density(0.3)
            .with_plant(0.6),
    )
    .computation
}

fn deadline() -> Duration {
    Duration::from_secs(30)
}

#[test]
fn tcp_vc_token_matches_simulator() {
    let mut detected = 0;
    for seed in 0..6u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let sim = run_vc_token(&computation, &wcp, SimConfig::seeded(1));
        let net = run_vc_token_net(
            &computation,
            &wcp,
            NetConfig::tcp().with_deadline(deadline()),
        );
        assert_eq!(net.report.detection, sim.report.detection, "seed {seed}");
        assert!(net.net.frames_sent > 0 && net.net.bytes_sent > 0);
        if matches!(net.report.detection, Detection::Detected { .. }) {
            detected += 1;
        }
    }
    assert!(detected > 0, "workloads never detect — test is vacuous");
}

#[test]
fn tcp_direct_matches_simulator() {
    for seed in 0..6u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let sim = run_direct(&computation, &wcp, SimConfig::seeded(1), false);
        let net = run_direct_net(
            &computation,
            &wcp,
            false,
            NetConfig::tcp().with_deadline(deadline()),
        );
        assert_eq!(net.report.detection, sim.report.detection, "seed {seed}");
    }
}

#[test]
fn loopback_matches_simulator_for_both_detectors() {
    for seed in 0..8u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let vc_sim = run_vc_token(&computation, &wcp, SimConfig::seeded(2));
        let vc_net = run_vc_token_net(&computation, &wcp, NetConfig::loopback());
        assert_eq!(
            vc_net.report.detection, vc_sim.report.detection,
            "vc {seed}"
        );
        let dd_sim = run_direct(&computation, &wcp, SimConfig::seeded(2), true);
        let dd_net = run_direct_net(&computation, &wcp, true, NetConfig::loopback());
        assert_eq!(
            dd_net.report.detection, dd_sim.report.detection,
            "dd {seed}"
        );
    }
}

#[test]
fn tcp_vc_token_survives_delay_duplicate_reorder() {
    for seed in 0..4u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let sim = run_vc_token(&computation, &wcp, SimConfig::seeded(1));
        let faults = FaultConfig::delay_duplicate_reorder(seed);
        let net = run_vc_token_net(
            &computation,
            &wcp,
            NetConfig::tcp()
                .with_faults(faults)
                .with_deadline(deadline()),
        );
        assert_eq!(
            net.report.detection, sim.report.detection,
            "seed {seed}: verdict changed under tolerated faults"
        );
    }
}

#[test]
fn tcp_direct_survives_delay_duplicate_reorder() {
    for seed in 0..4u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let sim = run_direct(&computation, &wcp, SimConfig::seeded(1), false);
        let faults = FaultConfig::delay_duplicate_reorder(100 + seed);
        let net = run_direct_net(
            &computation,
            &wcp,
            false,
            NetConfig::tcp()
                .with_faults(faults)
                .with_deadline(deadline()),
        );
        assert_eq!(
            net.report.detection, sim.report.detection,
            "seed {seed}: verdict changed under tolerated faults"
        );
    }
}

#[test]
fn loopback_survives_drops_and_resets_via_recovery() {
    for seed in 0..3u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let sim = run_vc_token(&computation, &wcp, SimConfig::seeded(1));
        let faults = FaultConfig::seeded(seed).with_drop(0.15).with_reset(0.05);
        let net = run_vc_token_net(
            &computation,
            &wcp,
            NetConfig::loopback()
                .with_faults(faults)
                .with_deadline(deadline()),
        );
        assert_eq!(net.report.detection, sim.report.detection, "seed {seed}");
    }
}

#[test]
fn wire_mode_never_changes_the_verdict_under_faults() {
    // Batched (default) and per-frame writes must be indistinguishable at
    // the verdict level, even under an injected fault schedule: the
    // fault layer draws one decision per frame regardless of how frames
    // are grouped into writes, so both modes consume the same schedule.
    for seed in 0..3u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let sim = run_vc_token(&computation, &wcp, SimConfig::seeded(1));
        let faults = FaultConfig::delay_duplicate_reorder(seed);
        let batched = run_vc_token_net(
            &computation,
            &wcp,
            NetConfig::loopback()
                .with_faults(faults.clone())
                .with_deadline(deadline()),
        );
        let per_frame = run_vc_token_net(
            &computation,
            &wcp,
            NetConfig::loopback()
                .with_per_frame_writes()
                .with_faults(faults)
                .with_deadline(deadline()),
        );
        assert_eq!(
            batched.report.detection, sim.report.detection,
            "seed {seed}"
        );
        assert_eq!(
            per_frame.report.detection, sim.report.detection,
            "seed {seed}: per-frame path diverged"
        );
        assert!(
            batched.net.batch_flushes < batched.net.frames_sent,
            "seed {seed}: batched run never coalesced"
        );
    }
}

#[test]
fn telemetry_never_perturbs_verdicts_metrics_or_fault_schedules() {
    // The tentpole property of the telemetry plane: turning it on changes
    // nothing observable about detection. Verdict AND paper-unit metrics
    // are bit-identical, and the injected fault schedule is untouched
    // (telemetry frames ride the un-faulted recovery path, so the fault
    // layer draws exactly the same decisions) — across clean links and
    // drop + delay + duplicate + reorder + reset schedules.
    let schedules: Vec<Option<FaultConfig>> = vec![
        None,
        Some(FaultConfig::delay_duplicate_reorder(7)),
        Some(FaultConfig::seeded(9).with_drop(0.15).with_reset(0.05)),
    ];
    for (which, faults) in schedules.into_iter().enumerate() {
        for seed in 0..3u64 {
            let computation = workload(seed);
            let wcp = Wcp::over_first(3);
            let mut config = NetConfig::loopback().with_deadline(deadline());
            if let Some(f) = &faults {
                config = config.with_faults(f.clone());
            }
            let off = run_vc_token_net(&computation, &wcp, config);
            let on = run_vc_token_net(&computation, &wcp, config.with_telemetry());
            assert_eq!(
                on.report.detection, off.report.detection,
                "schedule {which} seed {seed}: telemetry changed the verdict"
            );
            // The metrics a threaded run determines (the shutdown
            // broadcast races with the application tail, so the snapshot
            // counters vary run-to-run with telemetry entirely off — see
            // `fault::tests::telemetry_resends_consume_no_fault_schedule`
            // for the per-frame proof that telemetry adds nothing to
            // that pre-existing variance).
            assert_eq!(
                on.report.metrics.token_hops, off.report.metrics.token_hops,
                "schedule {which} seed {seed}: telemetry changed the token path"
            );
            assert_eq!(
                (
                    on.report.metrics.control_messages,
                    on.report.metrics.control_bytes,
                ),
                (
                    off.report.metrics.control_messages,
                    off.report.metrics.control_bytes,
                ),
                "schedule {which} seed {seed}: telemetry changed control accounting"
            );
            let collector = on.telemetry.expect("telemetry run returns its collector");
            assert!(off.telemetry.is_none(), "off run must not collect");
            assert!(
                collector.events_collected() > 0,
                "schedule {which} seed {seed}: sidecar collected nothing"
            );
            assert_eq!(collector.malformed(), 0);
        }
    }
}

#[test]
fn telemetry_collector_merges_every_peer_over_tcp() {
    let computation = workload(1);
    let wcp = Wcp::over_first(3);
    let net = run_vc_token_net(
        &computation,
        &wcp,
        NetConfig::tcp().with_deadline(deadline()).with_telemetry(),
    );
    let collector = net.telemetry.expect("collector");
    let sources = collector.source_stats();
    assert_eq!(sources.len(), 3, "one telemetry stream per peer");
    assert!(net.net.telemetry_sent > 0, "peers 1,2 framed deltas");
    assert_eq!(collector.malformed(), 0);
    let merged = collector.merged();
    assert!(!merged.is_empty());
    // The merged timeline is causally ordered: effective times never
    // decrease (TELEMETRY frames carry each stream in recording order and
    // the merge sorts by effective logical time).
    let dashboard = collector.dashboard("tcp run");
    assert!(dashboard.contains("wcp top"));
    assert!(dashboard.contains("source"));
}

#[test]
fn wire_v1_and_v2_agree_with_the_simulator_under_every_fault_schedule() {
    // The wire-v2 acceptance pin: the same computation under the same
    // fault schedule yields the simulator's verdict on both wire
    // versions, while v2 measurably compresses (within one run,
    // `bytes_sent` vs the v1-equivalent accounting — cross-run byte
    // comparisons would race the shutdown broadcast).
    let schedules: Vec<Option<FaultConfig>> = vec![
        None,
        Some(FaultConfig::delay_duplicate_reorder(5)),
        Some(FaultConfig::seeded(13).with_drop(0.15).with_reset(0.05)),
    ];
    for (which, faults) in schedules.into_iter().enumerate() {
        for seed in 0..3u64 {
            let computation = workload(seed);
            let wcp = Wcp::over_first(3);
            let sim = run_vc_token(&computation, &wcp, SimConfig::seeded(1));
            // Real sockets on the clean schedule; loopback under injected
            // faults (the fault layer is substrate-independent and the
            // TCP fault runs above already cover that axis).
            let mut config = if which == 0 {
                NetConfig::tcp()
            } else {
                NetConfig::loopback()
            }
            .with_deadline(deadline());
            if let Some(f) = &faults {
                config = config.with_faults(f.clone());
            }
            let v2 = run_vc_token_net(&computation, &wcp, config);
            let v1 = run_vc_token_net(&computation, &wcp, config.with_wire_v1());
            assert_eq!(
                v2.report.detection, sim.report.detection,
                "schedule {which} seed {seed}: v2 diverged from the simulator"
            );
            assert_eq!(
                v1.report.detection, sim.report.detection,
                "schedule {which} seed {seed}: v1 diverged from the simulator"
            );
            assert!(
                v2.net.bytes_sent < v2.net.wire_bytes_v1_equiv,
                "schedule {which} seed {seed}: v2 did not compress ({:?})",
                v2.net
            );
            assert!(
                v2.net.keyframes_sent > 0,
                "schedule {which} seed {seed}: v2 links never negotiated"
            );
            assert_eq!(
                v1.net.bytes_sent, v1.net.wire_bytes_v1_equiv,
                "schedule {which} seed {seed}: v1 accounting must be exact"
            );
            assert_eq!(
                v1.net.delta_frames_sent + v1.net.keyframes_sent,
                0,
                "schedule {which} seed {seed}: v1 run sent v2 frames"
            );
        }
    }
}

#[test]
fn paper_unit_accounting_is_wire_version_invariant() {
    // Satellite of the wire-v2 change: `DetectionMetrics` and the bound
    // audit count paper units via `wire_size()`, never actual encoded
    // bytes — so switching the wire version must leave every audited
    // quantity untouched. Only the schedule-independent counters are
    // pinned across runs (the shutdown broadcast races the application
    // tail, so raw snapshot counts vary run-to-run even on one version).
    for seed in 0..3u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let audit_run = |config: NetConfig| {
            let ring = Arc::new(RingRecorder::new(1 << 16));
            let net = run_vc_token_net_recorded(&computation, &wcp, config, ring.clone());
            assert_eq!(ring.dropped(), 0, "ring too small for the audit");
            let events = ring.events();
            let streams = split_by_monitor(&events);
            let borrowed: Vec<(u32, &[StampedEvent])> =
                streams.iter().map(|(m, s)| (*m, s.as_slice())).collect();
            let merged = merge_streams(&borrowed);
            let m1 = computation.max_events_per_process() as u64 + 1;
            let audit = audit_bounds(wcp.n(), m1, &merged, &BoundLimits::exact());
            (net, audit)
        };
        let base = NetConfig::loopback().with_deadline(deadline());
        let (v1, a1) = audit_run(base.with_wire_v1());
        let (v2, a2) = audit_run(base);
        assert_eq!(
            v1.report.detection, v2.report.detection,
            "seed {seed}: wire version changed the verdict"
        );
        assert!(a1.ok(), "seed {seed} v1: {:?}", a1.violations);
        assert!(a2.ok(), "seed {seed} v2: {:?}", a2.violations);
        assert_eq!(
            v1.report.metrics.token_hops, v2.report.metrics.token_hops,
            "seed {seed}: wire version changed the token path"
        );
        assert_eq!(
            (
                v1.report.metrics.control_messages,
                v1.report.metrics.control_bytes,
            ),
            (
                v2.report.metrics.control_messages,
                v2.report.metrics.control_bytes,
            ),
            "seed {seed}: wire version changed paper-unit accounting"
        );
        assert_eq!(
            (a1.n, a1.m1, a1.token_hops, a1.hop_limit),
            (a2.n, a2.m1, a2.token_hops, a2.hop_limit),
            "seed {seed}: wire version changed the audited bounds"
        );
        // And the v2 run really ran v2: it compressed below its own
        // v1-equivalent accounting while the audit stayed identical.
        assert!(
            v2.net.bytes_sent < v2.net.wire_bytes_v1_equiv,
            "seed {seed}: audit run never exercised compression"
        );
    }
}

#[test]
fn faulty_runs_actually_exercise_the_fault_machinery() {
    // Guard against a silently quiet schedule making the fault tests
    // vacuous: over a few seeds, the delay+duplicate+reorder schedule must
    // produce receiver-side dedup or resequencing work.
    let mut dups = 0;
    let mut reordered = 0;
    for seed in 0..4u64 {
        let computation = workload(seed);
        let wcp = Wcp::over_first(3);
        let net = run_vc_token_net(
            &computation,
            &wcp,
            NetConfig::loopback()
                .with_faults(FaultConfig::delay_duplicate_reorder(seed))
                .with_deadline(deadline()),
        );
        dups += net.net.duplicates_dropped;
        reordered += net.net.reordered;
    }
    assert!(
        dups > 0 && reordered > 0,
        "fault schedule injected nothing (dups {dups}, reordered {reordered})"
    );
}

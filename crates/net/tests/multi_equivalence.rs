//! Acceptance tests for the multi-tenant service over real transport: a
//! socket run serving `k` predicates at once yields per-predicate
//! verdicts *and* paper-unit `DetectionMetrics` bit-identical to
//!
//! 1. the offline engine fed the annotated trace directly,
//! 2. `k` independent single-predicate runs ("alone" baselines), and
//! 3. the discrete-event simulator hosting the same actors,
//!
//! on loopback and TCP, on clean links and under tolerated
//! drop + reset and delay + duplicate + reorder fault schedules. The
//! engine's canonical routed log makes each session's entire observable
//! behaviour a function of the computation alone — this suite pins that
//! the transport cannot perturb it.

use std::time::Duration;

use wcp_clocks::ProcessId;
use wcp_net::{run_multi_net, run_multi_net_with, NetConfig};
use wcp_session::{run_multi_offline, run_multi_sim_with, run_single_offline, MultiReport};
use wcp_sim::FaultConfig;
use wcp_trace::generate::{generate, GeneratorConfig};
use wcp_trace::{Computation, Wcp};

fn workload(seed: u64, procs: usize, events: usize) -> Computation {
    generate(
        &GeneratorConfig::new(procs, events)
            .with_seed(seed)
            .with_predicate_density(0.3),
    )
    .computation
}

/// `k` deterministic predicates with diverse (non-prefix) scopes.
fn derived_predicates(n: usize, k: usize) -> Vec<Wcp> {
    (0..k)
        .map(|j| {
            let width = 1 + (j % n);
            Wcp::over((0..width).map(|i| ProcessId::new(((j * 3 + i) % n) as u32)))
        })
        .collect()
}

fn deadline() -> Duration {
    Duration::from_secs(30)
}

/// Pins a net report against the offline reference, the wire verdicts
/// against the engine verdicts, and each outcome against its alone
/// baseline.
fn assert_multi_identical(
    computation: &Computation,
    got: &MultiReport,
    reference: &MultiReport,
    label: &str,
) {
    assert_eq!(got.outcomes.len(), reference.outcomes.len(), "{label}");
    for (g, want) in got.outcomes.iter().zip(&reference.outcomes) {
        assert_eq!(g.verdict, want.verdict, "{label} id {}", g.id);
        assert_eq!(
            g.metrics, want.metrics,
            "{label} id {}: metrics diverged from offline",
            g.id
        );
        let (alone_verdict, alone_metrics) = run_single_offline(computation, &g.wcp);
        assert_eq!(g.verdict, alone_verdict, "{label} id {}", g.id);
        assert_eq!(
            g.metrics, alone_metrics,
            "{label} id {}: metrics diverged from alone baseline",
            g.id
        );
        assert_eq!(
            got.wire_verdicts.get(&g.id),
            Some(&g.verdict.cut().map(<[u64]>::to_vec)),
            "{label} id {}: controller saw a different verdict on the wire",
            g.id
        );
    }
    assert_eq!(got.stats, reference.stats, "{label}: engine counters");
    assert_eq!(got.stored_bytes, reference.stored_bytes, "{label}");
}

#[test]
fn loopback_multi_matches_offline_and_alone() {
    for seed in 0..6u64 {
        let computation = workload(seed, 2 + (seed as usize % 4), 8);
        let n = computation.process_count();
        let predicates = derived_predicates(n, 6);
        let offline = run_multi_offline(&computation, &predicates);
        let net = run_multi_net(&computation, &predicates, NetConfig::loopback());
        assert_multi_identical(&computation, &net.report, &offline, "loopback");
        assert!(net.net.frames_sent > 0, "snapshots crossed the wire");
        assert_eq!(
            net.net.multi_sessions_active,
            predicates.len() as u64,
            "mirrored session counter"
        );
        assert_eq!(
            net.net.multi_detections, net.report.stats.detections,
            "mirrored detection counter"
        );
    }
}

#[test]
fn tcp_multi_matches_offline_and_alone() {
    for seed in 0..4u64 {
        let computation = workload(seed, 3, 8);
        let predicates = derived_predicates(3, 5);
        let offline = run_multi_offline(&computation, &predicates);
        let net = run_multi_net(
            &computation,
            &predicates,
            NetConfig::tcp().with_deadline(deadline()),
        );
        assert_multi_identical(&computation, &net.report, &offline, "tcp");
    }
}

#[test]
fn multi_survives_drops_and_resets_via_recovery() {
    for seed in 0..3u64 {
        let computation = workload(seed, 4, 8);
        let predicates = derived_predicates(4, 5);
        let offline = run_multi_offline(&computation, &predicates);
        let faults = FaultConfig::seeded(seed).with_drop(0.15).with_reset(0.05);
        let net = run_multi_net(
            &computation,
            &predicates,
            NetConfig::loopback()
                .with_faults(faults)
                .with_deadline(deadline()),
        );
        assert_multi_identical(&computation, &net.report, &offline, "drop+reset");
    }
}

#[test]
fn tcp_multi_survives_delay_duplicate_reorder() {
    for seed in 0..3u64 {
        let computation = workload(seed, 3, 8);
        let predicates = derived_predicates(3, 5);
        let offline = run_multi_offline(&computation, &predicates);
        let faults = FaultConfig::delay_duplicate_reorder(200 + seed);
        let net = run_multi_net(
            &computation,
            &predicates,
            NetConfig::tcp()
                .with_faults(faults)
                .with_deadline(deadline()),
        );
        assert_multi_identical(&computation, &net.report, &offline, "ddr");
    }
}

#[test]
fn unregistration_is_transport_independent() {
    // Registrations 0..5 with ids 10..15, then ids 11 and 13 unregister
    // mid-run: the surviving sessions must be untouched, identically on
    // the simulator and over sockets (clean and faulted).
    for seed in 0..3u64 {
        let computation = workload(seed, 4, 10);
        let predicates = derived_predicates(4, 5);
        let registrations: Vec<(u64, Wcp)> = predicates
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, w)| (10 + i as u64, w))
            .collect();
        let unregister = [11u64, 13];
        // The sim leg pumps with the sharded parallel pump (2 workers):
        // transport-independence must hold across pump modes too.
        let sim = run_multi_sim_with(&computation, &registrations, &unregister, seed, 2);
        let recorder: std::sync::Arc<dyn wcp_obs::Recorder> =
            std::sync::Arc::new(wcp_obs::NullRecorder);
        for (label, config) in [
            ("loopback", NetConfig::loopback()),
            (
                "faulted",
                NetConfig::loopback()
                    .with_faults(FaultConfig::delay_duplicate_reorder(seed))
                    .with_deadline(deadline()),
            ),
        ] {
            let net = run_multi_net_with(
                &computation,
                &registrations,
                &unregister,
                config,
                recorder.clone(),
                None,
            );
            assert_eq!(
                net.report.outcomes.len(),
                3,
                "{label} seed {seed}: two sessions unregistered"
            );
            for (g, want) in net.report.outcomes.iter().zip(&sim.outcomes) {
                assert_eq!(g.id, want.id, "{label} seed {seed}");
                assert_eq!(g.verdict, want.verdict, "{label} seed {seed} id {}", g.id);
                assert_eq!(g.metrics, want.metrics, "{label} seed {seed} id {}", g.id);
            }
        }
    }
}

#[test]
fn parallel_pump_service_is_bit_identical_over_sockets() {
    // The socket service pumping with 4 sharded workers must be
    // indistinguishable from the serial-pump socket run and from the
    // offline reference — on clean and faulted links.
    for seed in 0..3u64 {
        let computation = workload(seed, 4, 10);
        let predicates = derived_predicates(4, 6);
        let offline = run_multi_offline(&computation, &predicates);
        for (label, config) in [
            ("parallel", NetConfig::loopback().with_pump_threads(4)),
            (
                "parallel+faults",
                NetConfig::loopback()
                    .with_pump_threads(4)
                    .with_faults(FaultConfig::delay_duplicate_reorder(seed))
                    .with_deadline(deadline()),
            ),
        ] {
            let net = run_multi_net(&computation, &predicates, config);
            assert_multi_identical(&computation, &net.report, &offline, label);
        }
    }
}

#[test]
fn wire_v1_and_v2_agree_on_every_session() {
    // MULTI frames have v1-only bodies; they must ride a wire-v2
    // connection unchanged and the verdicts must not care.
    let computation = workload(11, 4, 10);
    let predicates = derived_predicates(4, 6);
    let v2 = run_multi_net(&computation, &predicates, NetConfig::loopback());
    let v1 = run_multi_net(
        &computation,
        &predicates,
        NetConfig::loopback().with_wire_v1(),
    );
    for (a, b) in v2.report.outcomes.iter().zip(&v1.report.outcomes) {
        assert_eq!(a.verdict, b.verdict, "id {}", a.id);
        assert_eq!(a.metrics, b.metrics, "id {}", a.id);
    }
    assert!(
        v2.net.delta_frames_sent + v2.net.keyframes_sent > 0,
        "v2 run actually compressed clocks"
    );
}

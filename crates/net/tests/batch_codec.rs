//! Property tests for the batched wire format: a batch is *defined* as the
//! concatenation of individually encoded frames, so any reassembly of the
//! byte stream — split at every possible byte boundary — must decode to
//! exactly the frame sequence the unbatched codec produces. The same holds
//! end to end: a TCP reader fed the batch in arbitrary dribbles, and a
//! batching endpoint versus a per-frame endpoint, all deliver identical
//! frame sequences.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use wcp_clocks::VectorClock;
use wcp_detect::online::{ClockTag, DetectMsg};
use wcp_detect::VcSnapshot;
use wcp_net::codec::{decode_frame, encode_frame, frame_len_at};
use wcp_net::{
    spawn_listener, Endpoint, Frame, FramePool, LoopbackTransport, NetCounters, Payload, Transport,
};
use wcp_obs::NullRecorder;
use wcp_sim::ActorId;
use wcp_trace::MsgId;

/// A mixed bag of payloads covering every batching class: bulk app
/// traffic, bulk snapshots, and immediate control frames.
fn sample_frames() -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut payloads: Vec<Payload> = Vec::new();
    for i in 0..4u64 {
        payloads.push(Payload::Detect(DetectMsg::App {
            msg: MsgId::new(i),
            tag: ClockTag::Scalar(i),
        }));
        payloads.push(Payload::Detect(DetectMsg::VcSnapshot(VcSnapshot {
            interval: i,
            clock: VectorClock::from_components(vec![i, 2 * i + 1, 7]),
        })));
    }
    payloads.push(Payload::Detect(DetectMsg::DdToken));
    payloads.push(Payload::Detect(DetectMsg::EndOfTrace));
    payloads.push(Payload::Verdict(None));
    payloads.push(Payload::Shutdown);
    for (seq, payload) in payloads.into_iter().enumerate() {
        frames.push(Frame {
            peer: 2,
            from: ActorId::new(5),
            to: ActorId::new(9),
            seq: seq as u64,
            payload,
        });
    }
    frames
}

/// The persistent-read-buffer contract, expressed via the public codec
/// only: consume the maximal prefix of complete frames, keep the rest.
fn drain_complete(buf: &mut Vec<u8>) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(len) = frame_len_at(buf, at).filter(|len| at + len <= buf.len()) {
        out.push(decode_frame(&buf[at..at + len]).expect("complete frame decodes"));
        at += len;
    }
    buf.drain(..at);
    out
}

#[test]
fn batch_split_at_every_byte_boundary_decodes_like_the_unbatched_codec() {
    let frames = sample_frames();
    let batch: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
    for split in 0..=batch.len() {
        let mut pending = batch[..split].to_vec();
        let mut decoded = drain_complete(&mut pending);
        // Whatever the split holds back must be a strict prefix of one
        // frame — never something the walker misparses.
        assert!(
            frame_len_at(&pending, 0).is_none_or(|len| len > pending.len()),
            "split {split}: leftover parsed as complete"
        );
        pending.extend_from_slice(&batch[split..]);
        decoded.extend(drain_complete(&mut pending));
        assert!(pending.is_empty(), "split {split}: bytes left over");
        assert_eq!(decoded, frames, "split {split}: decode diverged");
    }
}

#[test]
fn tcp_reader_fed_arbitrary_dribbles_reassembles_the_exact_frame_stream() {
    let frames = sample_frames();
    let batch: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

    let counters = NetCounters::shared();
    let pool = FramePool::shared(counters.clone());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel();
    let handle = spawn_listener(listener, tx, stop.clone(), pool);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    // Irregular write sizes (1, 2, 3, ... bytes) guarantee frames straddle
    // writes; TCP may merge them further, splitting reads anywhere.
    let mut at = 0;
    let mut step = 1;
    while at < batch.len() {
        let end = (at + step).min(batch.len());
        stream.write_all(&batch[at..end]).unwrap();
        stream.flush().unwrap();
        at = end;
        step = step % 7 + 1;
    }
    drop(stream);

    let mut received = Vec::new();
    while received.len() < batch.len() {
        let chunk = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("reader delivered all bytes");
        // Each delivered chunk must hold only whole frames.
        let mut copy = chunk.to_vec();
        let in_chunk = drain_complete(&mut copy);
        assert!(
            !in_chunk.is_empty() && copy.is_empty(),
            "partial frame leaked"
        );
        received.extend_from_slice(&chunk);
    }
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();

    assert_eq!(received, batch, "byte stream mutated in flight");
    let mut all = received;
    assert_eq!(drain_complete(&mut all), frames);
}

/// A connected endpoint pair over loopback with its own counter block.
fn endpoint_pair(batch: bool) -> (Endpoint, Endpoint, Arc<NetCounters>) {
    let (tx0, rx0) = channel();
    let (tx1, rx1) = channel();
    let counters = NetCounters::shared();
    let pool = FramePool::shared(counters.clone());
    let mk = |me: u32, tx: std::sync::mpsc::Sender<wcp_net::PooledBuf>, rx| {
        Endpoint::new(
            me,
            vec![
                None,
                Some(Box::new(LoopbackTransport::new(tx, pool.clone())) as Box<dyn Transport>),
            ],
            rx,
            counters.clone(),
            Arc::new(NullRecorder),
            4,
            Duration::from_millis(1),
            batch,
        )
    };
    let e0 = mk(0, tx1, rx0);
    let e1 = mk(1, tx0, rx1);
    (e0, e1, counters)
}

/// Drives `traffic` payloads through a fresh pair and returns the
/// delivered `(seq, frame)` sequence plus the pair's counters.
fn deliver_all(batch: bool) -> (Vec<Frame>, Arc<NetCounters>) {
    let (mut sender, mut receiver, counters) = endpoint_pair(batch);
    let a = ActorId::new(0);
    let total = {
        let frames = sample_frames();
        for f in &frames {
            sender.send(1, a, a, f.payload.clone());
        }
        frames.len()
    };
    sender.flush_all();
    let mut got = Vec::new();
    while got.len() < total {
        let raw = receiver
            .recv(Duration::from_secs(10))
            .expect("all frames delivered");
        got.push(raw.to_frame());
    }
    sender.close();
    receiver.close();
    (got, counters)
}

#[test]
fn batched_and_per_frame_endpoints_deliver_identical_frame_sequences() {
    let (batched, batched_counters) = deliver_all(true);
    let (per_frame, per_frame_counters) = deliver_all(false);
    assert_eq!(batched, per_frame, "wire mode changed delivered frames");

    let b = batched_counters.snapshot();
    let p = per_frame_counters.snapshot();
    assert_eq!(b.frames_sent, p.frames_sent);
    assert_eq!(b.bytes_sent, p.bytes_sent, "batching must not change bytes");
    assert!(
        b.batch_flushes < b.frames_sent,
        "batched mode never coalesced ({} flushes / {} frames)",
        b.batch_flushes,
        b.frames_sent
    );
    assert_eq!(
        p.batch_flushes, p.frames_sent,
        "per-frame mode must write once per frame"
    );
}

#[test]
fn steady_state_traffic_recycles_pooled_buffers() {
    let (mut sender, mut receiver, counters) = endpoint_pair(true);
    let a = ActorId::new(0);
    let rounds = 200u64;
    for i in 0..rounds {
        sender.send(
            1,
            a,
            a,
            Payload::Detect(DetectMsg::App {
                msg: MsgId::new(i),
                tag: ClockTag::Scalar(i),
            }),
        );
        // Flush every round so buffers cycle through the pool rather than
        // accumulating in one giant batch.
        sender.flush_all();
        let raw = receiver.recv(Duration::from_secs(10)).expect("delivered");
        assert_eq!(raw.seq(), i);
    }
    let stats = counters.snapshot();
    assert!(
        stats.pool_reuses > stats.pool_allocs,
        "pool mostly recycles in steady state (allocs {}, reuses {})",
        stats.pool_allocs,
        stats.pool_reuses
    );
    assert!(
        stats.pool_allocs < rounds / 4,
        "allocations should be a small working set, got {}",
        stats.pool_allocs
    );
}

//! Property tests for the batched wire format: a batch is *defined* as the
//! concatenation of individually encoded frames, so any reassembly of the
//! byte stream — split at every possible byte boundary — must decode to
//! exactly the frame sequence the unbatched codec produces. The same holds
//! end to end: a TCP reader fed the batch in arbitrary dribbles, and a
//! batching endpoint versus a per-frame endpoint, all deliver identical
//! frame sequences.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use wcp_clocks::{ProcessId, VectorClock};
use wcp_detect::offline::token::{Color, Token};
use wcp_detect::online::{ClockTag, DetectMsg, GroupTokenMsg};
use wcp_detect::VcSnapshot;
use wcp_net::codec::{
    decode_frame, decode_header, decode_payload, decode_stateful_v2, encode_frame,
    encode_frame_into_v2, frame_len_at, kind, DecodedV2, BODY_START,
};
use wcp_net::{
    spawn_listener, ClockChains, Endpoint, Frame, FramePool, LoopbackTransport, NetCounters,
    Payload, Transport,
};
use wcp_obs::NullRecorder;
use wcp_sim::ActorId;
use wcp_trace::MsgId;

/// A mixed bag of payloads covering every batching class: bulk app
/// traffic, bulk snapshots, and immediate control frames.
fn sample_frames() -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut payloads: Vec<Payload> = Vec::new();
    for i in 0..4u64 {
        payloads.push(Payload::Detect(DetectMsg::App {
            msg: MsgId::new(i),
            tag: ClockTag::Scalar(i),
        }));
        payloads.push(Payload::Detect(DetectMsg::VcSnapshot(VcSnapshot {
            interval: i,
            clock: VectorClock::from_components(vec![i, 2 * i + 1, 7]),
        })));
    }
    payloads.push(Payload::Detect(DetectMsg::DdToken));
    payloads.push(Payload::Detect(DetectMsg::MultiRegister {
        id: 7,
        scope: vec![ProcessId::new(0), ProcessId::new(2)],
    }));
    payloads.push(Payload::Detect(DetectMsg::MultiUnregister { id: 7 }));
    payloads.push(Payload::Detect(DetectMsg::MultiVerdict {
        id: 9,
        verdict: Some(vec![3, 1]),
    }));
    payloads.push(Payload::Detect(DetectMsg::MultiVerdict {
        id: 10,
        verdict: None,
    }));
    payloads.push(Payload::Detect(DetectMsg::EndOfTrace));
    payloads.push(Payload::Verdict(None));
    payloads.push(Payload::Shutdown);
    for (seq, payload) in payloads.into_iter().enumerate() {
        frames.push(Frame {
            peer: 2,
            from: ActorId::new(5),
            to: ActorId::new(9),
            seq: seq as u64,
            payload,
        });
    }
    frames
}

/// The persistent-read-buffer contract, expressed via the public codec
/// only: consume the maximal prefix of complete frames, keep the rest.
fn drain_complete(buf: &mut Vec<u8>) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(len) = frame_len_at(buf, at).filter(|len| at + len <= buf.len()) {
        out.push(decode_frame(&buf[at..at + len]).expect("complete frame decodes"));
        at += len;
    }
    buf.drain(..at);
    out
}

#[test]
fn batch_split_at_every_byte_boundary_decodes_like_the_unbatched_codec() {
    let frames = sample_frames();
    let batch: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
    for split in 0..=batch.len() {
        let mut pending = batch[..split].to_vec();
        let mut decoded = drain_complete(&mut pending);
        // Whatever the split holds back must be a strict prefix of one
        // frame — never something the walker misparses.
        assert!(
            frame_len_at(&pending, 0).is_none_or(|len| len > pending.len()),
            "split {split}: leftover parsed as complete"
        );
        pending.extend_from_slice(&batch[split..]);
        decoded.extend(drain_complete(&mut pending));
        assert!(pending.is_empty(), "split {split}: bytes left over");
        assert_eq!(decoded, frames, "split {split}: decode diverged");
    }
}

#[test]
fn tcp_reader_fed_arbitrary_dribbles_reassembles_the_exact_frame_stream() {
    let frames = sample_frames();
    let batch: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

    let counters = NetCounters::shared();
    let pool = FramePool::shared(counters.clone());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel();
    let handle = spawn_listener(listener, tx, stop.clone(), pool);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    // Irregular write sizes (1, 2, 3, ... bytes) guarantee frames straddle
    // writes; TCP may merge them further, splitting reads anywhere.
    let mut at = 0;
    let mut step = 1;
    while at < batch.len() {
        let end = (at + step).min(batch.len());
        stream.write_all(&batch[at..end]).unwrap();
        stream.flush().unwrap();
        at = end;
        step = step % 7 + 1;
    }
    drop(stream);

    let mut received = Vec::new();
    while received.len() < batch.len() {
        let chunk = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("reader delivered all bytes");
        // Each delivered chunk must hold only whole frames.
        let mut copy = chunk.to_vec();
        let in_chunk = drain_complete(&mut copy);
        assert!(
            !in_chunk.is_empty() && copy.is_empty(),
            "partial frame leaked"
        );
        received.extend_from_slice(&chunk);
    }
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();

    assert_eq!(received, batch, "byte stream mutated in flight");
    let mut all = received;
    assert_eq!(drain_complete(&mut all), frames);
}

/// A connected endpoint pair over loopback with its own counter block.
fn endpoint_pair(batch: bool, wire_v2: bool) -> (Endpoint, Endpoint, Arc<NetCounters>) {
    let (tx0, rx0) = channel();
    let (tx1, rx1) = channel();
    let counters = NetCounters::shared();
    let pool = FramePool::shared(counters.clone());
    let mk = |me: u32, tx: std::sync::mpsc::Sender<wcp_net::PooledBuf>, rx| {
        Endpoint::new(
            me,
            vec![
                None,
                Some(Box::new(LoopbackTransport::new(tx, pool.clone())) as Box<dyn Transport>),
            ],
            rx,
            counters.clone(),
            Arc::new(NullRecorder),
            4,
            Duration::from_millis(1),
            batch,
            wire_v2,
        )
    };
    let e0 = mk(0, tx1, rx0);
    let e1 = mk(1, tx0, rx1);
    (e0, e1, counters)
}

/// Drives `traffic` payloads through a fresh pair and returns the
/// delivered `(seq, frame)` sequence plus the pair's counters.
fn deliver_all(batch: bool) -> (Vec<Frame>, Arc<NetCounters>) {
    let (mut sender, mut receiver, counters) = endpoint_pair(batch, true);
    let a = ActorId::new(0);
    let total = {
        let frames = sample_frames();
        for f in &frames {
            sender.send(1, a, a, f.payload.clone());
        }
        frames.len()
    };
    sender.flush_all();
    let mut got = Vec::new();
    while got.len() < total {
        let raw = receiver
            .recv(Duration::from_secs(10))
            .expect("all frames delivered");
        got.push(raw.to_frame());
    }
    sender.close();
    receiver.close();
    (got, counters)
}

#[test]
fn batched_and_per_frame_endpoints_deliver_identical_frame_sequences() {
    let (batched, batched_counters) = deliver_all(true);
    let (per_frame, per_frame_counters) = deliver_all(false);
    assert_eq!(batched, per_frame, "wire mode changed delivered frames");

    let b = batched_counters.snapshot();
    let p = per_frame_counters.snapshot();
    assert_eq!(b.frames_sent, p.frames_sent);
    assert_eq!(b.bytes_sent, p.bytes_sent, "batching must not change bytes");
    assert!(
        b.batch_flushes < b.frames_sent,
        "batched mode never coalesced ({} flushes / {} frames)",
        b.batch_flushes,
        b.frames_sent
    );
    assert_eq!(
        p.batch_flushes, p.frames_sent,
        "per-frame mode must write once per frame"
    );
}

#[test]
fn steady_state_traffic_recycles_pooled_buffers() {
    let (mut sender, mut receiver, counters) = endpoint_pair(true, true);
    let a = ActorId::new(0);
    let rounds = 200u64;
    for i in 0..rounds {
        sender.send(
            1,
            a,
            a,
            Payload::Detect(DetectMsg::App {
                msg: MsgId::new(i),
                tag: ClockTag::Scalar(i),
            }),
        );
        // Flush every round so buffers cycle through the pool rather than
        // accumulating in one giant batch.
        sender.flush_all();
        let raw = receiver.recv(Duration::from_secs(10)).expect("delivered");
        assert_eq!(raw.seq(), i);
    }
    let stats = counters.snapshot();
    assert!(
        stats.pool_reuses > stats.pool_allocs,
        "pool mostly recycles in steady state (allocs {}, reuses {})",
        stats.pool_allocs,
        stats.pool_reuses
    );
    assert!(
        stats.pool_allocs < rounds / 4,
        "allocations should be a small working set, got {}",
        stats.pool_allocs
    );
}

/// Tiny deterministic PRNG (xorshift64*) for the arbitrary-stream
/// generators below.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// An arbitrary `DetectMsg` stream mixing every wire class: delta-chained
/// clocks (mostly small increments, occasionally wild jumps or width
/// changes, from two distinct sending actors so per-actor chains
/// interleave), stateless bit-packed tokens, and v1-only scalar bodies.
fn arbitrary_stream(seed: u64, count: usize) -> Vec<Frame> {
    let mut rng = Rng(seed | 1);
    // Evolving clock per (actor, class) so deltas and keyframes both occur.
    let mut clocks: std::collections::BTreeMap<(u32, u8), Vec<u64>> = Default::default();
    let mut evolve = |rng: &mut Rng, actor: u32, class: u8| -> Vec<u64> {
        let clock = clocks
            .entry((actor, class))
            .or_insert_with(|| vec![0; 3 + (actor as usize % 3)]);
        match rng.below(10) {
            0 => {
                // Width change: forces a keyframe mid-chain.
                *clock = (0..2 + rng.below(5)).map(|_| rng.below(1 << 20)).collect();
            }
            1 => {
                // Wild jump, including the u64 edges (wrapping deltas).
                let i = rng.below(clock.len() as u64) as usize;
                clock[i] = match rng.below(3) {
                    0 => u64::MAX,
                    1 => 0,
                    _ => rng.next(),
                };
            }
            _ => {
                // The common case: a few components tick forward.
                for _ in 0..=rng.below(3) {
                    let i = rng.below(clock.len() as u64) as usize;
                    clock[i] = clock[i].wrapping_add(1 + rng.below(4));
                }
            }
        }
        clock.clone()
    };
    (0..count)
        .map(|i| {
            let actor = (rng.below(2) as u32) * 5; // actors 0 and 5
            let payload = match rng.below(8) {
                0 | 1 => Payload::Detect(DetectMsg::App {
                    msg: MsgId::new(rng.next()),
                    tag: ClockTag::Vector(VectorClock::from_components(evolve(&mut rng, actor, 0))),
                }),
                2 | 3 => Payload::Detect(DetectMsg::VcSnapshot(VcSnapshot {
                    interval: rng.next(),
                    clock: VectorClock::from_components(evolve(&mut rng, actor, 1)),
                })),
                4 => {
                    let n = 1 + rng.below(6) as usize;
                    let mut t = Token::new(n);
                    for j in 0..n {
                        t.g[j] = rng.below(1 << 30);
                        if rng.below(2) == 0 {
                            t.set_color(j, Color::Green);
                        }
                    }
                    Payload::Detect(DetectMsg::VcToken(t))
                }
                5 => {
                    let n = 1 + rng.below(5) as usize;
                    let mut t = GroupTokenMsg::new(rng.below(4) as usize, n);
                    for j in 0..n {
                        t.g[j] = rng.next() >> rng.below(40);
                        if rng.below(2) == 0 {
                            t.color[j] = Color::Green;
                        }
                        if rng.below(3) == 0 {
                            t.candidates[j] = Some(VectorClock::from_components(
                                (0..n as u64).map(|_| rng.below(1 << 16)).collect(),
                            ));
                        }
                    }
                    Payload::Detect(DetectMsg::GroupToken(t))
                }
                6 => Payload::Detect(DetectMsg::App {
                    msg: MsgId::new(rng.next()),
                    tag: ClockTag::Scalar(rng.next()),
                }),
                _ => Payload::Detect(if rng.below(2) == 0 {
                    DetectMsg::DdToken
                } else {
                    DetectMsg::EndOfTrace
                }),
            };
            Frame {
                peer: 0,
                from: ActorId::new(actor),
                to: ActorId::new(9),
                seq: i as u64,
                payload,
            }
        })
        .collect()
}

/// Decodes one complete v2 frame (raw bytes, length prefix included),
/// advancing the receiver-side chains for the stateful kinds.
fn decode_v2_frame(raw: &[u8], chains: &mut ClockChains) -> Payload {
    let head = decode_header(raw).expect("header decodes");
    let body = &raw[BODY_START..];
    match head.kind {
        kind::APP_VECTOR_V2 | kind::VC_SNAPSHOT_V2 => {
            match decode_stateful_v2(&head, body, chains).expect("stateful body decodes") {
                DecodedV2::AppVector(id, clock) => Payload::Detect(DetectMsg::App {
                    msg: id,
                    tag: ClockTag::Vector(clock),
                }),
                DecodedV2::SnapshotClock(le) => {
                    Payload::Detect(DetectMsg::VcSnapshot(VcSnapshot {
                        interval: head.aux,
                        clock: VectorClock::from_components(
                            le.chunks_exact(8)
                                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                                .collect(),
                        ),
                    }))
                }
            }
        }
        _ => decode_payload(head.kind, head.aux, body).expect("stateless body decodes"),
    }
}

/// The raw-slice sibling of `drain_complete`: consume the maximal prefix
/// of complete frames as raw byte vectors, keep the rest.
fn drain_complete_raw(buf: &mut Vec<u8>) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(len) = frame_len_at(buf, at).filter(|len| at + len <= buf.len()) {
        out.push(buf[at..at + len].to_vec());
        at += len;
    }
    buf.drain(..at);
    out
}

#[test]
fn v2_streams_decode_identically_to_v1_at_every_dribble_split() {
    for seed in [3u64, 77, 0xDEAD_BEEF] {
        let frames = arbitrary_stream(seed, 40);
        // Ground truth: each frame's v1 encoding decodes back to itself.
        let expected: Vec<Payload> = frames
            .iter()
            .map(|f| {
                let decoded = decode_frame(&encode_frame(f)).expect("v1 roundtrip");
                assert_eq!(decoded.payload, f.payload, "v1 codec diverged");
                decoded.payload
            })
            .collect();
        // The whole stream under v2, one sender chain set.
        let mut tx_chains = ClockChains::default();
        let mut stream = Vec::new();
        for f in &frames {
            encode_frame_into_v2(f, &mut tx_chains, &mut stream);
        }
        // Reassemble at every possible byte boundary: the split may hold
        // back at most a strict prefix of one frame, and the stateful
        // decode across the boundary must equal the v1 payloads exactly.
        for split in 0..=stream.len() {
            let mut rx_chains = ClockChains::default();
            let mut decoded = Vec::new();
            let mut pending = stream[..split].to_vec();
            for raw in drain_complete_raw(&mut pending) {
                decoded.push(decode_v2_frame(&raw, &mut rx_chains));
            }
            pending.extend_from_slice(&stream[split..]);
            for raw in drain_complete_raw(&mut pending) {
                decoded.push(decode_v2_frame(&raw, &mut rx_chains));
            }
            assert!(pending.is_empty(), "seed {seed} split {split}: leftovers");
            assert_eq!(decoded, expected, "seed {seed} split {split}: diverged");
        }
    }
}

#[test]
fn v2_endpoints_deliver_the_v1_frame_sequence_for_fewer_bytes() {
    let run = |wire_v2: bool| {
        let (mut sender, mut receiver, counters) = endpoint_pair(true, wire_v2);
        let frames = arbitrary_stream(11, 120);
        for f in &frames {
            sender.send(1, f.from, f.to, f.payload.clone());
        }
        sender.flush_all();
        let mut got = Vec::new();
        while got.len() < frames.len() {
            let raw = receiver
                .recv(Duration::from_secs(10))
                .expect("all frames delivered");
            got.push(raw.to_frame());
        }
        sender.close();
        receiver.close();
        (got, counters.snapshot())
    };
    let (v1_frames, v1) = run(false);
    let (v2_frames, v2) = run(true);
    assert_eq!(v1_frames, v2_frames, "wire version changed delivery");
    assert_eq!(v1.frames_sent, v2.frames_sent);
    // v1-equivalent accounting is what v1 actually sent; v2 sends less.
    assert_eq!(v1.wire_bytes_v1_equiv, v1.bytes_sent);
    assert_eq!(v2.wire_bytes_v1_equiv, v1.bytes_sent);
    assert!(
        v2.bytes_sent < v1.bytes_sent,
        "v2 did not compress: {} vs {}",
        v2.bytes_sent,
        v1.bytes_sent
    );
    assert!(v2.delta_frames_sent > 0, "no deltas on a chained stream");
    assert!(v2.keyframes_sent > 0, "chains must start with keyframes");
    assert_eq!(v1.delta_frames_sent + v1.keyframes_sent, 0);
}

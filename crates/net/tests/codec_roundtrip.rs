//! Property test for the wire codec: for every [`DetectMsg`] variant over
//! seeded random clocks, tokens and snapshots,
//!
//! 1. `decode(encode(m)) == m` (the codec is lossless), and
//! 2. `encode(m).len() == m.wire_size()` (the body is exactly the
//!    paper-unit byte accounting — no hidden wire overhead in the body).

use wcp_clocks::{Dependence, ProcessId, VectorClock};
use wcp_detect::offline::token::{Color, Token};
use wcp_detect::online::{ClockTag, DetectMsg, GroupTokenMsg};
use wcp_detect::{DdSnapshot, VcSnapshot};
use wcp_net::codec::{decode_body, decode_frame, encode_body, encode_frame, Frame, Payload};
use wcp_obs::rng::Rng;
use wcp_sim::ActorId;
use wcp_trace::MsgId;

fn random_clock(rng: &mut Rng, n: usize) -> VectorClock {
    VectorClock::from_components((0..n).map(|_| rng.gen_range(0..1000u64)).collect())
}

fn random_color(rng: &mut Rng) -> Color {
    if rng.gen_bool(0.5) {
        Color::Green
    } else {
        Color::Red
    }
}

/// One random instance of every `DetectMsg` variant.
fn random_messages(rng: &mut Rng) -> Vec<DetectMsg> {
    let n = rng.gen_range(1..=12usize);
    let mut token = Token::new(n);
    for g in token.g.iter_mut() {
        *g = rng.gen_range(0..100u64);
    }
    for i in 0..n {
        let c = random_color(rng);
        token.set_color(i, c);
    }
    let mut group = GroupTokenMsg::new(rng.gen_range(0..4usize), n);
    for g in group.g.iter_mut() {
        *g = rng.gen_range(0..100u64);
    }
    for c in group.color.iter_mut() {
        *c = random_color(rng);
    }
    for i in 0..n {
        if rng.gen_bool(0.5) {
            group.candidates[i] = Some(random_clock(rng, n));
        }
    }
    vec![
        DetectMsg::App {
            msg: MsgId::new(rng.gen_range(0..10_000u64)),
            tag: ClockTag::Vector(random_clock(rng, n)),
        },
        DetectMsg::App {
            msg: MsgId::new(rng.gen_range(0..10_000u64)),
            tag: ClockTag::Scalar(rng.gen_range(0..10_000u64)),
        },
        DetectMsg::VcSnapshot(VcSnapshot {
            interval: rng.gen_range(0..10_000u64),
            clock: random_clock(rng, n),
        }),
        DetectMsg::DdSnapshot(DdSnapshot {
            clock: rng.gen_range(0..10_000u64),
            deps: (0..rng.gen_range(0..6usize))
                .map(|_| {
                    Dependence::new(
                        ProcessId::new(rng.gen_range(0..64u32)),
                        rng.gen_range(0..10_000u64),
                    )
                })
                .collect(),
        }),
        DetectMsg::EndOfTrace,
        DetectMsg::VcToken(token),
        DetectMsg::DdToken,
        DetectMsg::Poll {
            clock: rng.gen_range(0..10_000u64),
            next_red: rng
                .gen_bool(0.5)
                .then(|| ProcessId::new(rng.gen_range(0..64u32))),
        },
        DetectMsg::PollReply {
            became_red: rng.gen_bool(0.5),
        },
        DetectMsg::GroupToken(group),
        DetectMsg::MultiRegister {
            id: rng.gen_range(0..10_000u64),
            scope: (0..rng.gen_range(1..=8usize))
                .map(|_| ProcessId::new(rng.gen_range(0..64u32)))
                .collect(),
        },
        DetectMsg::MultiUnregister {
            id: rng.gen_range(0..10_000u64),
        },
        DetectMsg::MultiVerdict {
            id: rng.gen_range(0..10_000u64),
            verdict: rng
                .gen_bool(0.5)
                .then(|| (0..n).map(|_| rng.gen_range(0..10_000u64)).collect()),
        },
    ]
}

#[test]
fn every_variant_roundtrips_and_matches_wire_size() {
    use wcp_sim::WireSize;
    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(seed);
        for msg in random_messages(&mut rng) {
            let (kind, aux, body) = encode_body(&msg);
            assert_eq!(
                body.len(),
                msg.wire_size(),
                "seed {seed}: body length != wire_size for {msg:?}"
            );
            let back = decode_body(kind, aux, &body)
                .unwrap_or_else(|e| panic!("seed {seed}: decode failed for {msg:?}: {e}"));
            assert_eq!(back, msg, "seed {seed}");
        }
    }
}

#[test]
fn every_variant_roundtrips_through_whole_frames() {
    for seed in 0..50u64 {
        let mut rng = Rng::seed_from_u64(seed);
        for msg in random_messages(&mut rng) {
            let frame = Frame {
                peer: rng.gen_range(0..16u32),
                from: ActorId::new(rng.gen_range(0..32u32)),
                to: ActorId::new(rng.gen_range(0..32u32)),
                seq: rng.gen_range(0..1_000_000u64),
                payload: Payload::Detect(msg),
            };
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame, "seed {seed}");
        }
    }
}

//! Typed trace events emitted by the detectors and substrates.

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Logical timestamp of an event.
///
/// Offline detectors count protocol steps, the simulator uses its tick
/// clock, and the direct-dependence algorithm naturally stamps with its
/// scalar (Lamport) clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogicalTime {
    /// No meaningful logical time (e.g. setup).
    #[default]
    Unknown,
    /// Protocol step counter (offline emulation) or simulator tick.
    Tick(u64),
    /// Scalar clock value (Section 4 algorithms).
    Scalar(u64),
}

impl LogicalTime {
    /// The numeric value regardless of flavour (0 when unknown).
    pub fn value(self) -> u64 {
        match self {
            LogicalTime::Unknown => 0,
            LogicalTime::Tick(t) | LogicalTime::Scalar(t) => t,
        }
    }
}

impl ToJson for LogicalTime {
    fn to_json(&self) -> Json {
        match *self {
            LogicalTime::Unknown => Json::Null,
            LogicalTime::Tick(t) => Json::obj([("tick", Json::UInt(t))]),
            LogicalTime::Scalar(t) => Json::obj([("scalar", Json::UInt(t))]),
        }
    }
}

impl FromJson for LogicalTime {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if *value == Json::Null {
            return Ok(LogicalTime::Unknown);
        }
        if let Some(t) = value.get("tick") {
            return Ok(LogicalTime::Tick(t.expect_u64()?));
        }
        if let Some(t) = value.get("scalar") {
            return Ok(LogicalTime::Scalar(t.expect_u64()?));
        }
        Err(JsonError::shape(format!("bad logical time: {value}")))
    }
}

/// One observable step of a detection protocol.
///
/// Variants carry the *metric deltas* they imply, so a recorded stream can
/// be folded back into exact cost aggregates (see
/// `wcp_detect::replay_metrics`); `work` fields are in the paper's
/// component-operation units and are attributed to the stamping monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The token arrived at the stamping monitor.
    TokenAcquired {
        /// Sender position (`None` for the initial token).
        from: Option<u32>,
    },
    /// The stamping monitor sent the token on.
    TokenForwarded {
        /// Receiving monitor position.
        to: u32,
        /// Wire size of the token message.
        bytes: u64,
    },
    /// A candidate snapshot was consumed and rejected.
    CandidateEliminated {
        /// Scope position / process whose candidate died.
        process: u32,
        /// The eliminated interval index.
        interval: u64,
        /// Work units spent consuming it.
        work: u64,
    },
    /// A candidate snapshot was consumed and survives in the cut.
    CandidateAccepted {
        /// Scope position / process of the surviving candidate.
        process: u32,
        /// The accepted interval index.
        interval: u64,
        /// Work units spent consuming it.
        work: u64,
    },
    /// A token entry was invalidated by the elimination rule without
    /// consuming a snapshot (Figure 3's `for` loop). Timeline-only.
    CandidateInvalidated {
        /// Scope position whose entry turned red.
        process: u32,
        /// The invalidated interval index.
        interval: u64,
    },
    /// A local snapshot reached a monitor's buffer.
    SnapshotBuffered {
        /// Buffer depth after insertion.
        depth: u64,
        /// Wire size of the snapshot message.
        bytes: u64,
    },
    /// A buffered snapshot left a monitor's queue. Timeline-only.
    SnapshotDrained {
        /// Buffer depth after removal.
        depth: u64,
    },
    /// A direct-dependence poll was sent (Figure 5 `visit`).
    PollSent {
        /// Polled process.
        to: u32,
        /// Wire size of the poll.
        bytes: u64,
    },
    /// A poll was answered.
    PollAnswered {
        /// The process that asked.
        to: u32,
        /// Whether the polled candidate is still alive.
        alive: bool,
        /// Wire size of the reply.
        bytes: u64,
    },
    /// The red token moved along the `next_red` chain (Section 4).
    RedChainHop {
        /// Receiving process.
        to: u32,
        /// Wire size of the transferred state.
        bytes: u64,
    },
    /// Control traffic that is not a token transfer: leader round-trips of
    /// the multi-token variant (§3.5), group-state shipping of the
    /// hierarchical checker. May batch several wire messages in one event.
    ControlSent {
        /// Receiving participant.
        to: u32,
        /// Number of wire messages batched into this event.
        count: u64,
        /// Total wire size of the batch.
        bytes: u64,
    },
    /// Work not attributable to a single consumed candidate.
    Work {
        /// Work units, attributed to the stamping monitor.
        units: u64,
    },
    /// The critical path advanced by `units` (concurrent variants only;
    /// sequential detectors' parallel time is their total work).
    ParallelAdvance {
        /// Critical-path units.
        units: u64,
    },
    /// Lattice baseline: `states` more global states were visited.
    LatticeVisited {
        /// Newly visited states.
        states: u64,
    },
    /// The WCP was detected.
    DetectionFound {
        /// Scope-indexed interval choices of the satisfying cut.
        cut: Vec<u64>,
    },
    /// The run ended without detection.
    DetectionExhausted,
    /// Substrate-level delivery (emitted by the simulator): a message was
    /// handed to its destination after waiting `delay` ticks in flight.
    MessageDelivered {
        /// Sending actor index.
        from: u32,
        /// Receiving actor index.
        to: u32,
        /// Ticks between send and delivery.
        delay: u64,
    },
    /// Transport-level (emitted by `wcp-net`): an encoded frame left this
    /// peer. `bytes` counts the full frame including the header, so it is
    /// real bytes-on-the-wire, not the paper-unit payload accounting.
    FrameSent {
        /// Destination peer index.
        to: u32,
        /// Frame bytes on the wire (header + body).
        bytes: u64,
    },
    /// Transport-level (emitted by `wcp-net`): a frame arrived at this
    /// peer and survived dedup.
    FrameReceived {
        /// Originating peer index.
        from: u32,
        /// Frame bytes on the wire (header + body).
        bytes: u64,
    },
    /// Transport-level (emitted by `wcp-net`): a frame was transmitted
    /// again, either after a fault-injected drop or when replaying the
    /// send log over a fresh connection.
    Retransmit {
        /// Destination peer index.
        to: u32,
        /// Retry attempt number (1 = first retransmission).
        attempt: u64,
    },
    /// Transport-level (emitted by `wcp-net`): a broken connection was
    /// re-established after exponential backoff.
    Reconnect {
        /// The peer the connection leads to.
        peer: u32,
        /// Reconnect attempt number (1 = first redial).
        attempt: u64,
    },
    /// Transport-level (emitted by `wcp-net`): a link's outbound batch was
    /// handed to the transport in one coalesced write.
    BatchFlushed {
        /// Destination peer index.
        to: u32,
        /// Number of frames coalesced into the write.
        frames: u64,
        /// Total bytes of the batch (headers included).
        bytes: u64,
    },
}

impl TraceEvent {
    /// Short kind tag used as the JSON key and in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TokenAcquired { .. } => "TokenAcquired",
            TraceEvent::TokenForwarded { .. } => "TokenForwarded",
            TraceEvent::CandidateEliminated { .. } => "CandidateEliminated",
            TraceEvent::CandidateAccepted { .. } => "CandidateAccepted",
            TraceEvent::CandidateInvalidated { .. } => "CandidateInvalidated",
            TraceEvent::SnapshotBuffered { .. } => "SnapshotBuffered",
            TraceEvent::SnapshotDrained { .. } => "SnapshotDrained",
            TraceEvent::PollSent { .. } => "PollSent",
            TraceEvent::PollAnswered { .. } => "PollAnswered",
            TraceEvent::RedChainHop { .. } => "RedChainHop",
            TraceEvent::ControlSent { .. } => "ControlSent",
            TraceEvent::Work { .. } => "Work",
            TraceEvent::ParallelAdvance { .. } => "ParallelAdvance",
            TraceEvent::LatticeVisited { .. } => "LatticeVisited",
            TraceEvent::DetectionFound { .. } => "DetectionFound",
            TraceEvent::DetectionExhausted => "DetectionExhausted",
            TraceEvent::MessageDelivered { .. } => "MessageDelivered",
            TraceEvent::FrameSent { .. } => "FrameSent",
            TraceEvent::FrameReceived { .. } => "FrameReceived",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::Reconnect { .. } => "Reconnect",
            TraceEvent::BatchFlushed { .. } => "BatchFlushed",
        }
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let payload = match self {
            TraceEvent::TokenAcquired { from } => Json::obj([(
                "from",
                match from {
                    Some(f) => Json::UInt(*f as u64),
                    None => Json::Null,
                },
            )]),
            TraceEvent::TokenForwarded { to, bytes } => {
                Json::obj([("to", (*to).into()), ("bytes", (*bytes).into())])
            }
            TraceEvent::CandidateEliminated {
                process,
                interval,
                work,
            } => Json::obj([
                ("process", (*process).into()),
                ("interval", (*interval).into()),
                ("work", (*work).into()),
            ]),
            TraceEvent::CandidateAccepted {
                process,
                interval,
                work,
            } => Json::obj([
                ("process", (*process).into()),
                ("interval", (*interval).into()),
                ("work", (*work).into()),
            ]),
            TraceEvent::CandidateInvalidated { process, interval } => Json::obj([
                ("process", (*process).into()),
                ("interval", (*interval).into()),
            ]),
            TraceEvent::SnapshotBuffered { depth, bytes } => {
                Json::obj([("depth", (*depth).into()), ("bytes", (*bytes).into())])
            }
            TraceEvent::SnapshotDrained { depth } => Json::obj([("depth", (*depth).into())]),
            TraceEvent::PollSent { to, bytes } => {
                Json::obj([("to", (*to).into()), ("bytes", (*bytes).into())])
            }
            TraceEvent::PollAnswered { to, alive, bytes } => Json::obj([
                ("to", (*to).into()),
                ("alive", (*alive).into()),
                ("bytes", (*bytes).into()),
            ]),
            TraceEvent::RedChainHop { to, bytes } => {
                Json::obj([("to", (*to).into()), ("bytes", (*bytes).into())])
            }
            TraceEvent::ControlSent { to, count, bytes } => Json::obj([
                ("to", (*to).into()),
                ("count", (*count).into()),
                ("bytes", (*bytes).into()),
            ]),
            TraceEvent::Work { units } => Json::obj([("units", (*units).into())]),
            TraceEvent::ParallelAdvance { units } => Json::obj([("units", (*units).into())]),
            TraceEvent::LatticeVisited { states } => Json::obj([("states", (*states).into())]),
            TraceEvent::DetectionFound { cut } => {
                Json::obj([("cut", Json::Arr(cut.iter().map(|&g| g.into()).collect()))])
            }
            TraceEvent::DetectionExhausted => return Json::Str("DetectionExhausted".into()),
            TraceEvent::MessageDelivered { from, to, delay } => Json::obj([
                ("from", (*from).into()),
                ("to", (*to).into()),
                ("delay", (*delay).into()),
            ]),
            TraceEvent::FrameSent { to, bytes } => {
                Json::obj([("to", (*to).into()), ("bytes", (*bytes).into())])
            }
            TraceEvent::FrameReceived { from, bytes } => {
                Json::obj([("from", (*from).into()), ("bytes", (*bytes).into())])
            }
            TraceEvent::Retransmit { to, attempt } => {
                Json::obj([("to", (*to).into()), ("attempt", (*attempt).into())])
            }
            TraceEvent::Reconnect { peer, attempt } => {
                Json::obj([("peer", (*peer).into()), ("attempt", (*attempt).into())])
            }
            TraceEvent::BatchFlushed { to, frames, bytes } => Json::obj([
                ("to", (*to).into()),
                ("frames", (*frames).into()),
                ("bytes", (*bytes).into()),
            ]),
        };
        Json::Obj(vec![(self.kind().to_string(), payload)])
    }
}

impl FromJson for TraceEvent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if value.as_str() == Some("DetectionExhausted") {
            return Ok(TraceEvent::DetectionExhausted);
        }
        let Some([(tag, p)]) = value.as_object() else {
            return Err(JsonError::shape(format!("bad event: {value}")));
        };
        let u32f = |key: &str| -> Result<u32, JsonError> { Ok(p.field(key)?.expect_u64()? as u32) };
        let u64f = |key: &str| p.field(key)?.expect_u64();
        Ok(match tag.as_str() {
            "TokenAcquired" => TraceEvent::TokenAcquired {
                from: match p.field("from")? {
                    Json::Null => None,
                    other => Some(other.expect_u64()? as u32),
                },
            },
            "TokenForwarded" => TraceEvent::TokenForwarded {
                to: u32f("to")?,
                bytes: u64f("bytes")?,
            },
            "CandidateEliminated" => TraceEvent::CandidateEliminated {
                process: u32f("process")?,
                interval: u64f("interval")?,
                work: u64f("work")?,
            },
            "CandidateAccepted" => TraceEvent::CandidateAccepted {
                process: u32f("process")?,
                interval: u64f("interval")?,
                work: u64f("work")?,
            },
            "CandidateInvalidated" => TraceEvent::CandidateInvalidated {
                process: u32f("process")?,
                interval: u64f("interval")?,
            },
            "SnapshotBuffered" => TraceEvent::SnapshotBuffered {
                depth: u64f("depth")?,
                bytes: u64f("bytes")?,
            },
            "SnapshotDrained" => TraceEvent::SnapshotDrained {
                depth: u64f("depth")?,
            },
            "PollSent" => TraceEvent::PollSent {
                to: u32f("to")?,
                bytes: u64f("bytes")?,
            },
            "PollAnswered" => TraceEvent::PollAnswered {
                to: u32f("to")?,
                alive: bool::from_json(p.field("alive")?)?,
                bytes: u64f("bytes")?,
            },
            "RedChainHop" => TraceEvent::RedChainHop {
                to: u32f("to")?,
                bytes: u64f("bytes")?,
            },
            "ControlSent" => TraceEvent::ControlSent {
                to: u32f("to")?,
                count: u64f("count")?,
                bytes: u64f("bytes")?,
            },
            "Work" => TraceEvent::Work {
                units: u64f("units")?,
            },
            "ParallelAdvance" => TraceEvent::ParallelAdvance {
                units: u64f("units")?,
            },
            "LatticeVisited" => TraceEvent::LatticeVisited {
                states: u64f("states")?,
            },
            "DetectionFound" => TraceEvent::DetectionFound {
                cut: Vec::<u64>::from_json(p.field("cut")?)?,
            },
            "MessageDelivered" => TraceEvent::MessageDelivered {
                from: u32f("from")?,
                to: u32f("to")?,
                delay: u64f("delay")?,
            },
            "FrameSent" => TraceEvent::FrameSent {
                to: u32f("to")?,
                bytes: u64f("bytes")?,
            },
            "FrameReceived" => TraceEvent::FrameReceived {
                from: u32f("from")?,
                bytes: u64f("bytes")?,
            },
            "Retransmit" => TraceEvent::Retransmit {
                to: u32f("to")?,
                attempt: u64f("attempt")?,
            },
            "Reconnect" => TraceEvent::Reconnect {
                peer: u32f("peer")?,
                attempt: u64f("attempt")?,
            },
            "BatchFlushed" => TraceEvent::BatchFlushed {
                to: u32f("to")?,
                frames: u64f("frames")?,
                bytes: u64f("bytes")?,
            },
            other => {
                return Err(JsonError::shape(format!("unknown event kind `{other}`")));
            }
        })
    }
}

/// A [`TraceEvent`] with its full stamp, as stored by recorders.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedEvent {
    /// Global sequence number in recording order.
    pub seq: u64,
    /// Acting monitor (scope position for Section 3 algorithms, process
    /// index for Section 4, actor index for substrate events).
    pub monitor: u32,
    /// Logical time of the step.
    pub time: LogicalTime,
    /// Wall-clock nanoseconds since recorder creation (threaded runs only).
    pub wall_nanos: Option<u64>,
    /// The event itself.
    pub event: TraceEvent,
}

impl ToJson for StampedEvent {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq".to_string(), Json::UInt(self.seq)),
            ("monitor".to_string(), Json::UInt(self.monitor as u64)),
            ("time".to_string(), self.time.to_json()),
        ];
        if let Some(ns) = self.wall_nanos {
            pairs.push(("wall_nanos".to_string(), Json::UInt(ns)));
        }
        pairs.push(("event".to_string(), self.event.to_json()));
        Json::Obj(pairs)
    }
}

impl FromJson for StampedEvent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(StampedEvent {
            seq: value.field("seq")?.expect_u64()?,
            monitor: value.field("monitor")?.expect_u64()? as u32,
            time: LogicalTime::from_json(value.field("time")?)?,
            wall_nanos: match value.get("wall_nanos") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.expect_u64()?),
            },
            event: TraceEvent::from_json(value.field("event")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TokenAcquired { from: None },
            TraceEvent::TokenAcquired { from: Some(2) },
            TraceEvent::TokenForwarded { to: 1, bytes: 27 },
            TraceEvent::CandidateEliminated {
                process: 0,
                interval: 3,
                work: 4,
            },
            TraceEvent::CandidateAccepted {
                process: 1,
                interval: 5,
                work: 4,
            },
            TraceEvent::CandidateInvalidated {
                process: 2,
                interval: 1,
            },
            TraceEvent::SnapshotBuffered {
                depth: 7,
                bytes: 40,
            },
            TraceEvent::SnapshotDrained { depth: 6 },
            TraceEvent::PollSent { to: 3, bytes: 16 },
            TraceEvent::PollAnswered {
                to: 3,
                alive: false,
                bytes: 1,
            },
            TraceEvent::RedChainHop { to: 0, bytes: 1 },
            TraceEvent::ControlSent {
                to: 4,
                count: 3,
                bytes: 72,
            },
            TraceEvent::Work { units: 9 },
            TraceEvent::ParallelAdvance { units: 2 },
            TraceEvent::LatticeVisited { states: 100 },
            TraceEvent::DetectionFound { cut: vec![2, 1, 4] },
            TraceEvent::DetectionExhausted,
            TraceEvent::MessageDelivered {
                from: 1,
                to: 2,
                delay: 8,
            },
            TraceEvent::FrameSent { to: 2, bytes: 65 },
            TraceEvent::FrameReceived { from: 0, bytes: 33 },
            TraceEvent::Retransmit { to: 1, attempt: 1 },
            TraceEvent::Reconnect {
                peer: 3,
                attempt: 2,
            },
            TraceEvent::BatchFlushed {
                to: 1,
                frames: 12,
                bytes: 480,
            },
        ]
    }

    #[test]
    fn every_event_roundtrips_through_json() {
        for e in samples() {
            let j = e.to_json();
            let back = TraceEvent::from_json(&j).unwrap();
            assert_eq!(back, e, "{j}");
            // And through text.
            let reparsed = Json::parse(&j.to_string()).unwrap();
            assert_eq!(TraceEvent::from_json(&reparsed).unwrap(), e);
        }
    }

    #[test]
    fn stamped_event_roundtrips() {
        for (i, e) in samples().into_iter().enumerate() {
            let s = StampedEvent {
                seq: i as u64,
                monitor: 3,
                time: if i % 2 == 0 {
                    LogicalTime::Tick(i as u64)
                } else {
                    LogicalTime::Scalar(i as u64)
                },
                wall_nanos: (i % 3 == 0).then_some(123_456),
                event: e,
            };
            let back = StampedEvent::from_json(&s.to_json()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn events_are_externally_tagged() {
        let j = TraceEvent::TokenForwarded { to: 4, bytes: 9 }.to_json();
        assert_eq!(j.to_string(), "{\"TokenForwarded\":{\"to\":4,\"bytes\":9}}");
        let unit = TraceEvent::DetectionExhausted.to_json();
        assert_eq!(unit.to_string(), "\"DetectionExhausted\"");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let j = Json::parse("{\"Bogus\":{}}").unwrap();
        assert!(TraceEvent::from_json(&j).is_err());
    }

    #[test]
    fn logical_time_ordering_and_value() {
        assert_eq!(LogicalTime::Unknown.value(), 0);
        assert_eq!(LogicalTime::Tick(4).value(), 4);
        assert_eq!(LogicalTime::Scalar(9).value(), 9);
        assert!(LogicalTime::Tick(1) < LogicalTime::Tick(2));
    }
}

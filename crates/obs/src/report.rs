//! Human-readable run reports: token-hop timeline and per-monitor tables.

use std::fmt;

use crate::event::{StampedEvent, TraceEvent};
use crate::hist::Log2Histogram;

/// Per-monitor aggregates folded from an event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorSummary {
    /// Times the token arrived here.
    pub token_acquired: u64,
    /// Times the token was sent on from here.
    pub token_forwarded: u64,
    /// Candidates consumed and rejected here.
    pub eliminated: u64,
    /// Candidates consumed that survived.
    pub accepted: u64,
    /// Polls sent from here.
    pub polls_sent: u64,
    /// Poll replies produced here.
    pub polls_answered: u64,
    /// Red-chain hops leaving this process.
    pub red_hops: u64,
    /// Work units attributed here.
    pub work: u64,
    /// Deepest snapshot buffer observed here.
    pub max_buffered: u64,
}

/// Aggregated view of one recorded run, renderable as ASCII.
///
/// Built by folding a [`StampedEvent`] stream; render with
/// [`render`](RunReport::render) or `Display`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Per-monitor summaries, indexed by monitor id.
    pub monitors: Vec<MonitorSummary>,
    /// Distribution of substrate message delays (queueing latency).
    pub queue_delay: Log2Histogram,
    /// Distribution of snapshot buffer depths at insertion.
    pub buffer_depth: Log2Histogram,
    /// `(time, monitor)` of each token acquisition, in stream order.
    pub token_path: Vec<(u64, u32)>,
    /// `(time, monitor, process, interval, accepted)` per consumed
    /// candidate, in stream order.
    pub eliminations: Vec<(u64, u32, u32, u64, bool)>,
    /// The detected cut, if any.
    pub detected_cut: Option<Vec<u64>>,
    /// Logical time of the verdict (detection or exhaustion).
    pub finished_at: Option<u64>,
    /// Total events folded.
    pub events: u64,
    /// Frame bytes sent on the wire (transport runs only).
    pub net_bytes_sent: u64,
    /// Frame bytes received from the wire (transport runs only).
    pub net_bytes_received: u64,
    /// Frames transmitted more than once (fault recovery).
    pub net_retransmits: u64,
    /// Connections re-established after a reset.
    pub net_reconnects: u64,
    /// Coalesced batch writes handed to transports (transport runs only).
    pub net_batch_flushes: u64,
    /// `(peer, marker)` per transport-level event in stream order:
    /// `f` = batch flush, `R` = retransmit, `C` = reconnect. Transport
    /// events carry no logical time, so the wire lane renders them on an
    /// event-order axis instead of the token timeline's tick axis.
    pub wire_marks: Vec<(u32, char)>,
}

impl RunReport {
    /// Folds an event stream into a report.
    pub fn from_events(events: &[StampedEvent]) -> Self {
        let mut report = RunReport::default();
        for e in events {
            report.events += 1;
            let t = e.time.value();
            // Monitor rows materialize lazily: substrate events (message
            // deliveries are stamped with raw actor ids, not monitor
            // positions) must not widen the per-monitor table.
            match &e.event {
                TraceEvent::TokenAcquired { .. } => {
                    report.monitor_mut(e.monitor).token_acquired += 1;
                    report.token_path.push((t, e.monitor));
                }
                TraceEvent::TokenForwarded { .. } => {
                    report.monitor_mut(e.monitor).token_forwarded += 1;
                }
                TraceEvent::CandidateEliminated {
                    process,
                    interval,
                    work,
                } => {
                    let m = report.monitor_mut(e.monitor);
                    m.eliminated += 1;
                    m.work += work;
                    report
                        .eliminations
                        .push((t, e.monitor, *process, *interval, false));
                }
                TraceEvent::CandidateAccepted {
                    process,
                    interval,
                    work,
                } => {
                    let m = report.monitor_mut(e.monitor);
                    m.accepted += 1;
                    m.work += work;
                    report
                        .eliminations
                        .push((t, e.monitor, *process, *interval, true));
                }
                TraceEvent::CandidateInvalidated { .. } => {}
                TraceEvent::SnapshotBuffered { depth, .. } => {
                    let m = report.monitor_mut(e.monitor);
                    m.max_buffered = m.max_buffered.max(*depth);
                    report.buffer_depth.record(*depth);
                }
                TraceEvent::SnapshotDrained { .. } => {}
                TraceEvent::PollSent { .. } => report.monitor_mut(e.monitor).polls_sent += 1,
                TraceEvent::PollAnswered { .. } => {
                    report.monitor_mut(e.monitor).polls_answered += 1;
                }
                TraceEvent::RedChainHop { .. } => {
                    report.monitor_mut(e.monitor).red_hops += 1;
                    report.token_path.push((t, e.monitor));
                }
                TraceEvent::ControlSent { .. } => {}
                TraceEvent::Work { units } => report.monitor_mut(e.monitor).work += units,
                TraceEvent::ParallelAdvance { .. } | TraceEvent::LatticeVisited { .. } => {}
                TraceEvent::DetectionFound { cut } => {
                    report.detected_cut = Some(cut.clone());
                    report.finished_at = Some(t);
                }
                TraceEvent::DetectionExhausted => report.finished_at = Some(t),
                TraceEvent::MessageDelivered { delay, .. } => {
                    report.queue_delay.record(*delay);
                }
                TraceEvent::FrameSent { bytes, .. } => report.net_bytes_sent += bytes,
                TraceEvent::FrameReceived { bytes, .. } => report.net_bytes_received += bytes,
                TraceEvent::Retransmit { .. } => {
                    report.net_retransmits += 1;
                    report.wire_marks.push((e.monitor, 'R'));
                }
                TraceEvent::Reconnect { .. } => {
                    report.net_reconnects += 1;
                    report.wire_marks.push((e.monitor, 'C'));
                }
                TraceEvent::BatchFlushed { .. } => {
                    report.net_batch_flushes += 1;
                    report.wire_marks.push((e.monitor, 'f'));
                }
            }
        }
        report
    }

    fn monitor_mut(&mut self, monitor: u32) -> &mut MonitorSummary {
        let index = monitor as usize;
        if index >= self.monitors.len() {
            self.monitors.resize(index + 1, MonitorSummary::default());
        }
        &mut self.monitors[index]
    }

    /// Total token movements (acquisitions plus red-chain hops).
    pub fn token_hops(&self) -> u64 {
        self.monitors
            .iter()
            .map(|m| m.token_forwarded + m.red_hops)
            .sum()
    }

    /// The ASCII token-hop timeline: one row per monitor, time flowing
    /// right, `●` where the token was held, `x`/`A` where candidates
    /// died/survived, `!` at detection.
    pub fn timeline(&self) -> String {
        const WIDTH: usize = 64;
        if self.monitors.is_empty() {
            return String::from("(no events)\n");
        }
        let t_max = self
            .token_path
            .iter()
            .map(|&(t, _)| t)
            .chain(self.eliminations.iter().map(|&(t, ..)| t))
            .chain(self.finished_at)
            .max()
            .unwrap_or(0);
        let col = |t: u64| -> usize {
            if t_max == 0 {
                0
            } else {
                ((t as u128 * (WIDTH as u128 - 1)) / t_max as u128) as usize
            }
        };
        let mut grid = vec![vec!['·'; WIDTH]; self.monitors.len()];
        for &(t, m) in &self.token_path {
            grid[m as usize][col(t)] = '●';
        }
        for &(t, m, _, _, accepted) in &self.eliminations {
            let cell = &mut grid[m as usize][col(t)];
            // Token markers take precedence over elimination markers only
            // when nothing more specific landed on the cell.
            *cell = if accepted { 'A' } else { 'x' };
        }
        if let (Some(t), Some(cut)) = (self.finished_at, &self.detected_cut) {
            let _ = cut;
            if let Some(&(_, m)) = self.token_path.last() {
                grid[m as usize][col(t)] = '!';
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "token timeline (t=0..{t_max}, {} hops; ●=token x=eliminated A=accepted !=detected)\n",
            self.token_hops()
        ));
        for (i, row) in grid.iter().enumerate() {
            out.push_str(&format!("  M{i:<3} "));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&self.wire_lane());
        out
    }

    /// The transport-event lane: one row per peer, event order flowing
    /// right (transport events carry no logical time), `f` per batch
    /// flush, `R` per retransmit, `C` per reconnect. Empty when the run
    /// never touched a transport.
    pub fn wire_lane(&self) -> String {
        const WIDTH: usize = 64;
        if self.wire_marks.is_empty() {
            return String::new();
        }
        let peers = self.wire_marks.iter().map(|&(p, _)| p).max().unwrap() as usize + 1;
        let total = self.wire_marks.len();
        let col = |i: usize| -> usize {
            if total <= 1 {
                0
            } else {
                i * (WIDTH - 1) / (total - 1)
            }
        };
        let mut grid = vec![vec!['·'; WIDTH]; peers];
        for (i, &(peer, mark)) in self.wire_marks.iter().enumerate() {
            let cell = &mut grid[peer as usize][col(i)];
            // Faults outrank flushes when events share a cell.
            if *cell == '·' || *cell == 'f' {
                *cell = mark;
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "wire lane ({total} events in order; f=batch flush R=retransmit C=reconnect)\n"
        ));
        for (i, row) in grid.iter().enumerate() {
            out.push_str(&format!("  W{i:<3} "));
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }

    /// The per-monitor summary table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "monitor | token_in | token_out | elim | accept | polls | replies | red_hops | work | max_buf\n",
        );
        out.push_str(
            "--------|----------|-----------|------|--------|-------|---------|----------|------|--------\n",
        );
        for (i, m) in self.monitors.iter().enumerate() {
            out.push_str(&format!(
                "M{i:<6} | {:>8} | {:>9} | {:>4} | {:>6} | {:>5} | {:>7} | {:>8} | {:>4} | {:>7}\n",
                m.token_acquired,
                m.token_forwarded,
                m.eliminated,
                m.accepted,
                m.polls_sent,
                m.polls_answered,
                m.red_hops,
                m.work,
                m.max_buffered,
            ));
        }
        out
    }

    /// Full rendering: timeline, table, histograms, verdict.
    pub fn render(&self) -> String {
        let mut out = self.timeline();
        out.push('\n');
        out.push_str(&self.table());
        out.push('\n');
        if !self.queue_delay.is_empty() {
            out.push_str(&self.queue_delay.render("queue delay (ticks)"));
        }
        if !self.buffer_depth.is_empty() {
            out.push_str(&self.buffer_depth.render("snapshot buffer depth"));
        }
        if self.net_bytes_sent > 0 || self.net_bytes_received > 0 {
            out.push_str(&format!(
                "wire: {} B sent, {} B received, {} retransmits, {} reconnects\n",
                self.net_bytes_sent,
                self.net_bytes_received,
                self.net_retransmits,
                self.net_reconnects
            ));
        }
        match (&self.detected_cut, self.finished_at) {
            (Some(cut), at) => {
                let cut: Vec<String> = cut.iter().map(u64::to_string).collect();
                out.push_str(&format!(
                    "verdict: DETECTED at ⟨{}⟩{}\n",
                    cut.join(","),
                    at.map(|t| format!(" (t={t})")).unwrap_or_default()
                ));
            }
            (None, Some(t)) => {
                out.push_str(&format!("verdict: UNDETECTED (exhausted at t={t})\n"));
            }
            (None, None) => out.push_str("verdict: (run still open)\n"),
        }
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogicalTime;

    fn ev(seq: u64, monitor: u32, t: u64, event: TraceEvent) -> StampedEvent {
        StampedEvent {
            seq,
            monitor,
            time: LogicalTime::Tick(t),
            wall_nanos: None,
            event,
        }
    }

    fn run() -> Vec<StampedEvent> {
        vec![
            ev(0, 0, 0, TraceEvent::TokenAcquired { from: None }),
            ev(
                1,
                0,
                1,
                TraceEvent::CandidateEliminated {
                    process: 0,
                    interval: 1,
                    work: 2,
                },
            ),
            ev(
                2,
                0,
                2,
                TraceEvent::CandidateAccepted {
                    process: 0,
                    interval: 2,
                    work: 2,
                },
            ),
            ev(3, 0, 3, TraceEvent::TokenForwarded { to: 1, bytes: 18 }),
            ev(4, 1, 5, TraceEvent::TokenAcquired { from: Some(0) }),
            ev(
                5,
                1,
                5,
                TraceEvent::SnapshotBuffered {
                    depth: 3,
                    bytes: 24,
                },
            ),
            ev(
                6,
                1,
                6,
                TraceEvent::CandidateAccepted {
                    process: 1,
                    interval: 1,
                    work: 2,
                },
            ),
            ev(
                7,
                1,
                7,
                TraceEvent::MessageDelivered {
                    from: 0,
                    to: 1,
                    delay: 2,
                },
            ),
            ev(8, 1, 8, TraceEvent::DetectionFound { cut: vec![2, 1] }),
        ]
    }

    #[test]
    fn folds_per_monitor_summaries() {
        let r = RunReport::from_events(&run());
        assert_eq!(r.monitors.len(), 2);
        assert_eq!(r.monitors[0].token_acquired, 1);
        assert_eq!(r.monitors[0].token_forwarded, 1);
        assert_eq!(r.monitors[0].eliminated, 1);
        assert_eq!(r.monitors[0].accepted, 1);
        assert_eq!(r.monitors[0].work, 4);
        assert_eq!(r.monitors[1].max_buffered, 3);
        assert_eq!(r.token_hops(), 1);
        assert_eq!(r.detected_cut, Some(vec![2, 1]));
        assert_eq!(r.finished_at, Some(8));
        assert_eq!(r.queue_delay.count(), 1);
        assert_eq!(r.events, 9);
    }

    #[test]
    fn render_contains_timeline_table_and_verdict() {
        let text = RunReport::from_events(&run()).render();
        assert!(text.contains("token timeline"), "{text}");
        assert!(text.contains("M0"), "{text}");
        assert!(text.contains("monitor | token_in"), "{text}");
        assert!(text.contains("DETECTED at ⟨2,1⟩"), "{text}");
        assert!(text.contains("queue delay"), "{text}");
        assert!(text.contains('●'), "{text}");
        assert!(text.contains('!'), "{text}");
    }

    #[test]
    fn undetected_run_renders_exhaustion() {
        let events = vec![
            ev(0, 0, 0, TraceEvent::TokenAcquired { from: None }),
            ev(1, 0, 4, TraceEvent::DetectionExhausted),
        ];
        let text = RunReport::from_events(&events).render();
        assert!(text.contains("UNDETECTED"), "{text}");
    }

    #[test]
    fn empty_stream_is_harmless() {
        let r = RunReport::from_events(&[]);
        assert!(r.monitors.is_empty());
        assert!(r.render().contains("(no events)"));
    }

    #[test]
    fn transport_events_render_in_the_wire_lane() {
        let mut events = run();
        let wire = |seq, peer, event| StampedEvent {
            seq,
            monitor: peer,
            time: LogicalTime::Unknown,
            wall_nanos: None,
            event,
        };
        events.push(wire(
            9,
            0,
            TraceEvent::BatchFlushed {
                to: 1,
                frames: 4,
                bytes: 128,
            },
        ));
        events.push(wire(10, 1, TraceEvent::Retransmit { to: 0, attempt: 1 }));
        events.push(wire(
            11,
            1,
            TraceEvent::Reconnect {
                peer: 0,
                attempt: 1,
            },
        ));
        let r = RunReport::from_events(&events);
        assert_eq!(
            r.wire_marks,
            vec![(0, 'f'), (1, 'R'), (1, 'C')],
            "stream order preserved"
        );
        let text = r.timeline();
        assert!(text.contains("wire lane (3 events"), "{text}");
        assert!(text.contains("W0"), "{text}");
        assert!(text.contains("W1"), "{text}");
        assert!(
            text.contains('R') && text.contains('C') && text.contains('f'),
            "{text}"
        );
    }

    #[test]
    fn runs_without_transport_events_render_no_wire_lane() {
        let r = RunReport::from_events(&run());
        assert!(r.wire_lane().is_empty());
        assert!(!r.render().contains("wire lane"));
    }

    #[test]
    fn red_chain_hops_count_as_token_movement() {
        let events = vec![
            ev(0, 2, 1, TraceEvent::RedChainHop { to: 3, bytes: 1 }),
            ev(1, 3, 2, TraceEvent::RedChainHop { to: 0, bytes: 1 }),
        ];
        let r = RunReport::from_events(&events);
        assert_eq!(r.token_hops(), 2);
        assert_eq!(r.monitors.len(), 4);
    }
}

//! Std-only observability substrate for the WCP detection stack.
//!
//! Every quantitative claim of the paper is a claim about a *trajectory* —
//! where the token travelled, when a candidate died, how deep the snapshot
//! queues grew — yet aggregates alone cannot show any of that. This crate
//! provides the missing layer, with **zero external dependencies** so it
//! builds even when the registry is unreachable:
//!
//! - [`TraceEvent`] / [`StampedEvent`] — the typed vocabulary of things the
//!   detectors do (token hops, eliminations, polls, red-chain hops, …),
//!   each stamped with a logical time, the acting monitor, and optionally
//!   wall-clock nanoseconds (threaded runs).
//! - [`Recorder`] — the sink trait; [`RingRecorder`] keeps a bounded
//!   in-memory ring, [`NullRecorder`] compiles down to nothing.
//! - [`Log2Histogram`] and [`Counters`] — fixed-size log₂-bucket histograms
//!   and monotone counters for queue delays, buffer depths, work per
//!   interval.
//! - [`json`] — a small JSON value type with serializer and parser, used by
//!   the whole workspace in place of serde (the wire format is identical to
//!   what the previous serde derives produced).
//! - [`jsonl`] — newline-delimited JSON encoding of event streams.
//! - [`RunReport`] — an ASCII token-hop timeline plus per-monitor summary
//!   table rendered from a recorded event stream.
//! - [`rng`] — a seeded, deterministic PRNG (splitmix64-seeded
//!   xoshiro256**) replacing the external `rand` stack for workload
//!   generation and simulated latency.
//!
//! # Example
//!
//! ```rust
//! use wcp_obs::json::ToJson;
//! use wcp_obs::{LogicalTime, Recorder, RingRecorder, TraceEvent};
//!
//! let rec = RingRecorder::new(1024);
//! rec.record(0, LogicalTime::Tick(3), TraceEvent::TokenForwarded { to: 1, bytes: 18 });
//! rec.record(1, LogicalTime::Tick(5), TraceEvent::DetectionFound { cut: vec![2, 1] });
//! let events = rec.events();
//! assert_eq!(events.len(), 2);
//! assert!(events[0].to_json().to_string().contains("TokenForwarded"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
pub mod json;
pub mod jsonl;
pub mod merge;
mod recorder;
mod report;
pub mod rng;

pub use event::{LogicalTime, StampedEvent, TraceEvent};
pub use hist::{Counters, Log2Histogram};
pub use merge::{merge_streams, split_by_monitor};
pub use recorder::{NullRecorder, Recorder, RingRecorder, TeeRecorder};
pub use report::RunReport;

//! A small JSON value type with serializer and parser.
//!
//! This replaces `serde`/`serde_json` across the workspace (the registry is
//! not reachable from the build environment, so external crates cannot be
//! resolved). The encoding conventions match what the previous serde
//! derives produced, so trace files written by earlier builds still load:
//!
//! - transparent newtypes serialize as their inner value (`ProcessId` → `3`,
//!   `VectorClock` → `[1,2,3]`),
//! - structs serialize as objects keyed by field name,
//! - enums are externally tagged (`{"Send":{"to":1,"msg":4}}`), with unit
//!   variants as bare strings (`"Undetected"`).

use std::fmt;

/// A JSON value.
///
/// Object keys keep insertion order so output is stable and diffable.
/// Integers are kept exact (`Int`/`UInt`) rather than coerced through
/// `f64`, because message ids and counters are 64-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key → value pairs).
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for shape errors).
    pub offset: usize,
}

impl JsonError {
    /// A shape error (wrong type / missing key), not tied to an offset.
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Serialize `self` into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstruct `Self` from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses `value`, reporting shape mismatches as [`JsonError`]s.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field.
    ///
    /// # Errors
    ///
    /// Shape error naming the missing key.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A required `u64`.
    ///
    /// # Errors
    ///
    /// Shape error when the value is not a non-negative integer.
    pub fn expect_u64(&self) -> Result<u64, JsonError> {
        self.as_u64()
            .ok_or_else(|| JsonError::shape(format!("expected unsigned integer, got {self}")))
    }

    /// A required array.
    ///
    /// # Errors
    ///
    /// Shape error when the value is not an array.
    pub fn expect_array(&self) -> Result<&[Json], JsonError> {
        self.as_array()
            .ok_or_else(|| JsonError::shape(format!("expected array, got {self}")))
    }

    /// Compact one-line rendering (same as `Display`).
    pub fn to_string_compact(&self) -> String {
        self.to_string()
    }

    /// Pretty rendering with two-space indentation, matching
    /// `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset for malformed input or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        // Keep a decimal point so the value re-parses as float.
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Inf; serde_json errors here, we degrade.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::UInt(v as u64)
        } else {
            Json::Int(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos.max(1),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected `\\u` after high surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so it is valid;
                    // re-decode the sequence.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            self.pos += 1;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Json::Int(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(b: u8) -> usize {
    if b >= 0xF0 {
        4
    } else if b >= 0xE0 {
        3
    } else {
        2
    }
}

// Blanket-ish impls for common shapes used across the workspace.

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_array()?.iter().map(T::from_json).collect()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_u64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::shape(format!("expected bool, got {value}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_like_serde_json() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::UInt(42).to_string(), "42");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::Float(0.5).to_string(), "0.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Str("a\"b\n".into()).to_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn compound_values_render_compactly() {
        let v = Json::obj([
            ("g", Json::from(vec![1u64, 2, 3])),
            ("ok", Json::Bool(false)),
        ]);
        assert_eq!(v.to_string(), "{\"g\":[1,2,3],\"ok\":false}");
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Json::obj([("a", Json::from(vec![1u64]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn parse_roundtrips() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":1,\"b\":[{\"c\":\"x\"}],\"d\":-7}",
            "0.25",
            "\"esc \\\\ \\\" \\n\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9\\ud83d\\ude00π\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("é😀π"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "[1,",
            "{\"a\"}",
            "tru",
            "[1] x",
            "\"unterminated",
            "{1:2}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_keep_64_bit_precision() {
        let big = u64::MAX - 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        let neg = Json::parse("-9007199254740993").unwrap();
        assert_eq!(neg.as_i64(), Some(-9007199254740993));
    }

    #[test]
    fn accessors_and_field_errors() {
        let v = Json::parse("{\"a\":1}").unwrap();
        assert_eq!(v.field("a").unwrap().expect_u64().unwrap(), 1);
        assert!(v.field("b").is_err());
        assert!(v.expect_array().is_err());
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn float_exponents_parse() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
    }
}

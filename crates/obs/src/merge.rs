//! Causal merge of per-process event streams into one global timeline.
//!
//! The telemetry plane collects one [`StampedEvent`] stream per peer
//! (each in its own recording order, with its own `seq` numbering).
//! [`merge_streams`] folds them into a single causally ordered timeline:
//!
//! - **Causality is preserved.** Logical times are simulator ticks (or
//!   per-run step counters), so an event that happened-before another
//!   never carries a larger time; the merge orders by effective logical
//!   time first. Events with no logical time (transport-level events are
//!   stamped [`LogicalTime::Unknown`]) inherit the time of the latest
//!   stamped event before them in their own stream, keeping every stream
//!   in its original order.
//! - **Ties break deterministically.** Concurrent events (equal
//!   effective time, different sources) order by source index, then by
//!   position within the source stream. Two collectors fed the same
//!   deltas — in any arrival order — produce byte-identical timelines.
//!
//! The merged timeline is what `wcp obs-report` renders and what the
//! bound auditor counts paper units over.

use crate::event::{LogicalTime, StampedEvent};

/// One peer's collected stream: `(source, events)` with events in the
/// source's own recording order.
pub type SourceStream<'a> = (u32, &'a [StampedEvent]);

/// Effective logical time of each event of one stream: the running
/// maximum of `time.value()`, so untimed events (transport-level) sort
/// with the latest timed event preceding them instead of at time zero.
fn effective_times(events: &[StampedEvent]) -> Vec<u64> {
    let mut eff = Vec::with_capacity(events.len());
    let mut latest = 0u64;
    for e in events {
        if !matches!(e.time, LogicalTime::Unknown) {
            latest = latest.max(e.time.value());
        }
        eff.push(latest);
    }
    eff
}

/// Merges per-source streams into one causally ordered global timeline.
///
/// Ordering key: `(effective time, source, position-in-stream)` — causal
/// (cross-tick) order always matches ground truth; concurrent (same-tick)
/// events use the deterministic tie-break. Every source stream appears as
/// a subsequence of the result, and the result is independent of the
/// order the streams are passed in.
pub fn merge_streams(streams: &[SourceStream<'_>]) -> Vec<StampedEvent> {
    let mut indexed: Vec<(u64, u32, usize, &StampedEvent)> = Vec::new();
    let mut sorted_sources: Vec<usize> = (0..streams.len()).collect();
    sorted_sources.sort_by_key(|&i| streams[i].0);
    for &i in &sorted_sources {
        let (source, events) = streams[i];
        let eff = effective_times(events);
        for (at, e) in events.iter().enumerate() {
            indexed.push((eff[at], source, at, e));
        }
    }
    indexed.sort_by_key(|&(eff, source, at, _)| (eff, source, at));
    indexed.into_iter().map(|(_, _, _, e)| e.clone()).collect()
}

/// Splits one globally recorded stream into per-monitor streams,
/// re-stamped with per-stream `seq` numbers — the shape each peer's
/// private recorder would have produced had the processes recorded
/// independently. The inverse direction of [`merge_streams`], used by
/// the causal-merge property tests and the fuzz bound auditor.
pub fn split_by_monitor(events: &[StampedEvent]) -> Vec<(u32, Vec<StampedEvent>)> {
    let mut streams: Vec<(u32, Vec<StampedEvent>)> = Vec::new();
    for e in events {
        let stream = match streams.iter_mut().find(|(m, _)| *m == e.monitor) {
            Some((_, s)) => s,
            None => {
                streams.push((e.monitor, Vec::new()));
                &mut streams.last_mut().unwrap().1
            }
        };
        let mut local = e.clone();
        local.seq = stream.len() as u64;
        stream.push(local);
    }
    streams.sort_by_key(|&(m, _)| m);
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(seq: u64, monitor: u32, time: LogicalTime, units: u64) -> StampedEvent {
        StampedEvent {
            seq,
            monitor,
            time,
            wall_nanos: None,
            event: TraceEvent::Work { units },
        }
    }

    #[test]
    fn merge_orders_by_time_then_source() {
        let a = vec![
            ev(0, 0, LogicalTime::Tick(1), 10),
            ev(1, 0, LogicalTime::Tick(5), 11),
        ];
        let b = vec![
            ev(0, 1, LogicalTime::Tick(2), 20),
            ev(1, 1, LogicalTime::Tick(5), 21),
        ];
        let merged = merge_streams(&[(0, &a), (1, &b)]);
        let units: Vec<u64> = merged
            .iter()
            .map(|e| match e.event {
                TraceEvent::Work { units } => units,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            units,
            vec![10, 20, 11, 21],
            "ticks order, source breaks ties"
        );
    }

    #[test]
    fn merge_is_independent_of_stream_argument_order() {
        let a = vec![ev(0, 0, LogicalTime::Tick(3), 1)];
        let b = vec![
            ev(0, 2, LogicalTime::Tick(1), 2),
            ev(1, 2, LogicalTime::Tick(3), 3),
        ];
        let fwd = merge_streams(&[(0, &a), (2, &b)]);
        let rev = merge_streams(&[(2, &b), (0, &a)]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn untimed_events_inherit_their_predecessor_time() {
        let a = vec![
            ev(0, 0, LogicalTime::Tick(4), 1),
            ev(1, 0, LogicalTime::Unknown, 2), // transport event mid-stream
        ];
        let b = vec![ev(0, 1, LogicalTime::Tick(2), 3)];
        let merged = merge_streams(&[(0, &a), (1, &b)]);
        let units: Vec<u64> = merged
            .iter()
            .map(|e| match e.event {
                TraceEvent::Work { units } => units,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            units,
            vec![3, 1, 2],
            "the untimed event stays after its tick-4 predecessor, not at t=0"
        );
    }

    #[test]
    fn streams_stay_subsequences_of_the_merge() {
        let a = vec![
            ev(0, 0, LogicalTime::Tick(9), 1),
            ev(1, 0, LogicalTime::Tick(2), 2), // out-of-order tick stays put
            ev(2, 0, LogicalTime::Tick(9), 3),
        ];
        let b = vec![ev(0, 1, LogicalTime::Tick(5), 4)];
        let merged = merge_streams(&[(0, &a), (1, &b)]);
        let a_units: Vec<u64> = merged
            .iter()
            .filter(|e| e.monitor == 0)
            .map(|e| match e.event {
                TraceEvent::Work { units } => units,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(a_units, vec![1, 2, 3], "per-stream order is never violated");
    }

    #[test]
    fn split_restamps_per_stream_seqs() {
        let global = vec![
            ev(0, 1, LogicalTime::Tick(0), 1),
            ev(1, 0, LogicalTime::Tick(1), 2),
            ev(2, 1, LogicalTime::Tick(2), 3),
        ];
        let streams = split_by_monitor(&global);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].0, 0);
        assert_eq!(streams[1].0, 1);
        assert_eq!(streams[1].1.len(), 2);
        assert_eq!(streams[1].1[0].seq, 0);
        assert_eq!(streams[1].1[1].seq, 1);
    }
}

//! Recorder trait and the ring-buffer / null implementations.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{LogicalTime, StampedEvent, TraceEvent};

/// A sink for [`TraceEvent`]s.
///
/// Implementations take `&self` and must be thread-safe so one recorder can
/// be shared (via `Arc`) by every monitor actor of a run, on either the
/// deterministic simulator or the threaded runtime.
pub trait Recorder: Send + Sync {
    /// Records one event performed by `monitor` at logical time `time`.
    fn record(&self, monitor: u32, time: LogicalTime, event: TraceEvent);

    /// Whether events are being kept. Call sites may skip building costly
    /// payloads when this is `false` — the contract that makes
    /// [`NullRecorder`] effectively free on hot paths.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A recorder that drops everything. [`is_enabled`](Recorder::is_enabled)
/// returns `false`, so instrumented hot paths skip event construction
/// entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&self, _monitor: u32, _time: LogicalTime, _event: TraceEvent) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<StampedEvent>,
    seq: u64,
    dropped: u64,
}

/// A bounded in-memory event buffer.
///
/// Keeps the most recent `capacity` events; older ones are dropped and
/// counted. Interior mutability (a mutex around a `VecDeque`) lets one
/// instance serve all monitors of a run.
#[derive(Debug)]
pub struct RingRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
    wall_clock: bool,
    epoch: Instant,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            ring: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
            wall_clock: false,
            epoch: Instant::now(),
        }
    }

    /// Also stamps events with wall-clock nanoseconds since creation —
    /// used by the threaded runtime, where logical ticks don't exist.
    pub fn with_wall_clock(mut self) -> Self {
        self.wall_clock = true;
        self
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    /// Whether nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// A copy of the buffered events, in recording order.
    pub fn events(&self) -> Vec<StampedEvent> {
        self.ring.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Removes and returns the buffered events, keeping the sequence
    /// counter running.
    pub fn drain(&self) -> Vec<StampedEvent> {
        self.ring.lock().unwrap().buf.drain(..).collect()
    }
}

/// A recorder that forwards every event to two sinks.
///
/// The telemetry plane uses this to tee a run's user-facing recorder into
/// a per-peer ring without the instrumented code knowing: each peer
/// records once, and both the caller's sink and the sidecar ring see the
/// event. Enabled whenever either side is.
pub struct TeeRecorder {
    a: std::sync::Arc<dyn Recorder>,
    b: std::sync::Arc<dyn Recorder>,
}

impl TeeRecorder {
    /// Tees into both `a` and `b`, in that order.
    pub fn new(a: std::sync::Arc<dyn Recorder>, b: std::sync::Arc<dyn Recorder>) -> Self {
        TeeRecorder { a, b }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, monitor: u32, time: LogicalTime, event: TraceEvent) {
        self.a.record(monitor, time, event.clone());
        self.b.record(monitor, time, event);
    }

    fn is_enabled(&self) -> bool {
        self.a.is_enabled() || self.b.is_enabled()
    }
}

impl Recorder for RingRecorder {
    fn record(&self, monitor: u32, time: LogicalTime, event: TraceEvent) {
        let wall_nanos = self
            .wall_clock
            .then(|| self.epoch.elapsed().as_nanos() as u64);
        let mut ring = self.ring.lock().unwrap();
        let seq = ring.seq;
        ring.seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(StampedEvent {
            seq,
            monitor,
            time,
            wall_nanos,
            event,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let r = NullRecorder;
        assert!(!r.is_enabled());
        r.record(0, LogicalTime::Tick(1), TraceEvent::Work { units: 1 });
    }

    #[test]
    fn ring_keeps_recording_order() {
        let r = RingRecorder::new(16);
        assert!(r.is_enabled());
        for i in 0..5u64 {
            r.record(0, LogicalTime::Tick(i), TraceEvent::Work { units: i });
        }
        let events = r.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let r = RingRecorder::new(3);
        for i in 0..10u64 {
            r.record(0, LogicalTime::Tick(i), TraceEvent::Work { units: i });
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(events[0].seq, 7, "oldest surviving event");
    }

    #[test]
    fn drain_empties_but_keeps_sequence() {
        let r = RingRecorder::new(8);
        r.record(1, LogicalTime::Unknown, TraceEvent::DetectionExhausted);
        assert_eq!(r.drain().len(), 1);
        assert!(r.is_empty());
        r.record(1, LogicalTime::Unknown, TraceEvent::DetectionExhausted);
        assert_eq!(r.events()[0].seq, 1);
    }

    #[test]
    fn wall_clock_stamps_when_enabled() {
        let r = RingRecorder::new(4).with_wall_clock();
        r.record(0, LogicalTime::Unknown, TraceEvent::Work { units: 1 });
        assert!(r.events()[0].wall_nanos.is_some());
        let r = RingRecorder::new(4);
        r.record(0, LogicalTime::Unknown, TraceEvent::Work { units: 1 });
        assert!(r.events()[0].wall_nanos.is_none());
    }

    #[test]
    fn tee_feeds_both_sinks_and_is_enabled_when_either_is() {
        use std::sync::Arc;
        let a = Arc::new(RingRecorder::new(8));
        let b = Arc::new(RingRecorder::new(8));
        let tee = TeeRecorder::new(a.clone(), b.clone());
        assert!(tee.is_enabled());
        tee.record(2, LogicalTime::Tick(7), TraceEvent::Work { units: 9 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.events()[0].monitor, 2);
        let null_tee = TeeRecorder::new(Arc::new(NullRecorder), Arc::new(NullRecorder));
        assert!(!null_tee.is_enabled());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        use std::sync::Arc;
        let r = Arc::new(RingRecorder::new(1024));
        let handles: Vec<_> = (0..4u32)
            .map(|m| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        r.record(m, LogicalTime::Tick(i), TraceEvent::Work { units: 1 });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 400);
    }
}

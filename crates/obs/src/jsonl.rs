//! Newline-delimited JSON encoding of event streams.
//!
//! One [`StampedEvent`] per line, in recording order — the format written
//! by `wcp trace --events out.jsonl` and consumed by external analysis
//! tooling (or [`read_str`] here).

use std::io::{self, Write};

use crate::event::{LogicalTime, StampedEvent, TraceEvent};
use crate::json::{FromJson, Json, JsonError};

/// Writes events as JSONL to `out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write<W: Write>(out: &mut W, events: &[StampedEvent]) -> io::Result<()> {
    let mut line = String::new();
    for event in events {
        line.clear();
        append_event(&mut line, event);
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Renders events as one JSONL string.
pub fn to_string(events: &[StampedEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for event in events {
        append_event(&mut out, event);
        out.push('\n');
    }
    out
}

/// Appends one event as a compact JSON line (no trailing newline),
/// byte-identical to `event.to_json().to_string()` but without building
/// the intermediate [`Json`] tree or going through `fmt` machinery.
/// Every field name is a plain ASCII identifier, so quoting needs no
/// escape pass. This is the telemetry sidecar's flush path: peers
/// serialize their ring delta right before shipping it, so every
/// nanosecond here sits on the detection thread.
pub fn append_event(out: &mut String, e: &StampedEvent) {
    out.push_str("{\"seq\":");
    push_u64(out, e.seq);
    out.push_str(",\"monitor\":");
    push_u64(out, u64::from(e.monitor));
    out.push_str(",\"time\":");
    match e.time {
        LogicalTime::Unknown => out.push_str("null"),
        LogicalTime::Tick(t) => {
            out.push_str("{\"tick\":");
            push_u64(out, t);
            out.push('}');
        }
        LogicalTime::Scalar(t) => {
            out.push_str("{\"scalar\":");
            push_u64(out, t);
            out.push('}');
        }
    }
    if let Some(ns) = e.wall_nanos {
        out.push_str(",\"wall_nanos\":");
        push_u64(out, ns);
    }
    out.push_str(",\"event\":");
    append_trace_event(out, &e.event);
    out.push('}');
}

/// Appends `v` in decimal without the `fmt` machinery.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are UTF-8"));
}

/// Appends one `"key":value` pair (`lead` is `{` for the first field,
/// `,` after).
fn push_field(out: &mut String, lead: char, key: &str, v: u64) {
    out.push(lead);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_u64(out, v);
}

/// The `TraceEvent` half of [`append_event`]: `{"Kind":{fields…}}`, with
/// the same two irregular shapes as `ToJson` (`DetectionExhausted` is a
/// bare string, a root token's `from` is `null`).
fn append_trace_event(out: &mut String, event: &TraceEvent) {
    let (kind, fields): (&str, &[(&str, u64)]) = match event {
        TraceEvent::TokenAcquired { from } => {
            match from {
                Some(f) => {
                    out.push_str("{\"TokenAcquired\":");
                    push_field(out, '{', "from", u64::from(*f));
                    out.push_str("}}");
                }
                None => out.push_str("{\"TokenAcquired\":{\"from\":null}}"),
            }
            return;
        }
        TraceEvent::PollAnswered { to, alive, bytes } => {
            out.push_str("{\"PollAnswered\":");
            push_field(out, '{', "to", u64::from(*to));
            out.push_str(",\"alive\":");
            out.push_str(if *alive { "true" } else { "false" });
            push_field(out, ',', "bytes", *bytes);
            out.push_str("}}");
            return;
        }
        TraceEvent::DetectionFound { cut } => {
            out.push_str("{\"DetectionFound\":{\"cut\":[");
            for (i, g) in cut.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_u64(out, *g);
            }
            out.push_str("]}}");
            return;
        }
        TraceEvent::DetectionExhausted => {
            out.push_str("\"DetectionExhausted\"");
            return;
        }
        TraceEvent::TokenForwarded { to, bytes } => (
            "TokenForwarded",
            &[("to", u64::from(*to)), ("bytes", *bytes)],
        ),
        TraceEvent::CandidateEliminated {
            process,
            interval,
            work,
        } => (
            "CandidateEliminated",
            &[
                ("process", u64::from(*process)),
                ("interval", *interval),
                ("work", *work),
            ],
        ),
        TraceEvent::CandidateAccepted {
            process,
            interval,
            work,
        } => (
            "CandidateAccepted",
            &[
                ("process", u64::from(*process)),
                ("interval", *interval),
                ("work", *work),
            ],
        ),
        TraceEvent::CandidateInvalidated { process, interval } => (
            "CandidateInvalidated",
            &[("process", u64::from(*process)), ("interval", *interval)],
        ),
        TraceEvent::SnapshotBuffered { depth, bytes } => {
            ("SnapshotBuffered", &[("depth", *depth), ("bytes", *bytes)])
        }
        TraceEvent::SnapshotDrained { depth } => ("SnapshotDrained", &[("depth", *depth)]),
        TraceEvent::PollSent { to, bytes } => {
            ("PollSent", &[("to", u64::from(*to)), ("bytes", *bytes)])
        }
        TraceEvent::RedChainHop { to, bytes } => {
            ("RedChainHop", &[("to", u64::from(*to)), ("bytes", *bytes)])
        }
        TraceEvent::ControlSent { to, count, bytes } => (
            "ControlSent",
            &[("to", u64::from(*to)), ("count", *count), ("bytes", *bytes)],
        ),
        TraceEvent::Work { units } => ("Work", &[("units", *units)]),
        TraceEvent::ParallelAdvance { units } => ("ParallelAdvance", &[("units", *units)]),
        TraceEvent::LatticeVisited { states } => ("LatticeVisited", &[("states", *states)]),
        TraceEvent::MessageDelivered { from, to, delay } => (
            "MessageDelivered",
            &[
                ("from", u64::from(*from)),
                ("to", u64::from(*to)),
                ("delay", *delay),
            ],
        ),
        TraceEvent::FrameSent { to, bytes } => {
            ("FrameSent", &[("to", u64::from(*to)), ("bytes", *bytes)])
        }
        TraceEvent::FrameReceived { from, bytes } => (
            "FrameReceived",
            &[("from", u64::from(*from)), ("bytes", *bytes)],
        ),
        TraceEvent::Retransmit { to, attempt } => (
            "Retransmit",
            &[("to", u64::from(*to)), ("attempt", *attempt)],
        ),
        TraceEvent::Reconnect { peer, attempt } => (
            "Reconnect",
            &[("peer", u64::from(*peer)), ("attempt", *attempt)],
        ),
        TraceEvent::BatchFlushed { to, frames, bytes } => (
            "BatchFlushed",
            &[
                ("to", u64::from(*to)),
                ("frames", *frames),
                ("bytes", *bytes),
            ],
        ),
    };
    out.push_str("{\"");
    out.push_str(kind);
    out.push_str("\":");
    let mut lead = '{';
    for (key, v) in fields {
        push_field(out, lead, key, *v);
        lead = ',';
    }
    out.push_str("}}");
}

/// Parses a JSONL document back into events. Blank lines are skipped.
///
/// # Errors
///
/// Returns the first malformed line's error, annotated with its line
/// number.
pub fn read_str(input: &str) -> Result<Vec<StampedEvent>, JsonError> {
    let mut events = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| JsonError {
            message: format!("line {}: {}", lineno + 1, e.message),
            offset: e.offset,
        })?;
        events.push(StampedEvent::from_json(&value).map_err(|e| JsonError {
            message: format!("line {}: {}", lineno + 1, e.message),
            offset: 0,
        })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LogicalTime, TraceEvent};

    fn sample(n: u64) -> Vec<StampedEvent> {
        (0..n)
            .map(|i| StampedEvent {
                seq: i,
                monitor: (i % 3) as u32,
                time: LogicalTime::Tick(i * 2),
                wall_nanos: None,
                event: TraceEvent::Work { units: i },
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_text() {
        let events = sample(5);
        let text = to_string(&events);
        assert_eq!(text.lines().count(), 5);
        assert_eq!(read_str(&text).unwrap(), events);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", to_string(&sample(1)));
        assert_eq!(read_str(&text).unwrap().len(), 1);
    }

    #[test]
    fn malformed_lines_name_their_line() {
        let err = read_str("{\"seq\":0}\nnot json\n").unwrap_err();
        assert!(err.message.contains("line 1"), "{err}");
        let err = read_str(&format!("{}not json\n", to_string(&sample(1)))).unwrap_err();
        assert!(err.message.contains("line 2"), "{err}");
    }

    /// Pins the streaming fast path to the `ToJson` tree rendering: one
    /// exemplar per `TraceEvent` variant (plus every stamp shape) must
    /// serialize byte-identically through both, and round-trip.
    #[test]
    fn fast_path_matches_tree_rendering_for_every_variant() {
        use crate::json::ToJson;
        let variants = vec![
            TraceEvent::TokenAcquired { from: None },
            TraceEvent::TokenAcquired { from: Some(4) },
            TraceEvent::TokenForwarded { to: 1, bytes: 36 },
            TraceEvent::CandidateEliminated {
                process: 2,
                interval: 9,
                work: 3,
            },
            TraceEvent::CandidateAccepted {
                process: 0,
                interval: 1,
                work: 2,
            },
            TraceEvent::CandidateInvalidated {
                process: 1,
                interval: 7,
            },
            TraceEvent::SnapshotBuffered {
                depth: 4,
                bytes: 80,
            },
            TraceEvent::SnapshotDrained { depth: 3 },
            TraceEvent::PollSent { to: 2, bytes: 8 },
            TraceEvent::PollAnswered {
                to: 2,
                alive: true,
                bytes: 9,
            },
            TraceEvent::PollAnswered {
                to: 0,
                alive: false,
                bytes: 9,
            },
            TraceEvent::RedChainHop { to: 5, bytes: 24 },
            TraceEvent::ControlSent {
                to: 1,
                count: 3,
                bytes: 120,
            },
            TraceEvent::Work { units: 11 },
            TraceEvent::ParallelAdvance { units: 2 },
            TraceEvent::LatticeVisited { states: 64 },
            TraceEvent::DetectionFound { cut: vec![] },
            TraceEvent::DetectionFound { cut: vec![3, 1, 4] },
            TraceEvent::DetectionExhausted,
            TraceEvent::MessageDelivered {
                from: 0,
                to: 2,
                delay: 7,
            },
            TraceEvent::FrameSent { to: 1, bytes: 52 },
            TraceEvent::FrameReceived { from: 1, bytes: 52 },
            TraceEvent::Retransmit { to: 2, attempt: 1 },
            TraceEvent::Reconnect {
                peer: 0,
                attempt: 2,
            },
            TraceEvent::BatchFlushed {
                to: 1,
                frames: 4,
                bytes: 208,
            },
        ];
        let stamps = [
            (LogicalTime::Unknown, None),
            (LogicalTime::Tick(17), Some(123_456)),
            (LogicalTime::Scalar(9), None),
        ];
        for (i, event) in variants.into_iter().enumerate() {
            let (time, wall_nanos) = stamps[i % stamps.len()];
            let stamped = StampedEvent {
                seq: i as u64,
                monitor: (i % 4) as u32,
                time,
                wall_nanos,
                event,
            };
            let mut fast = String::new();
            append_event(&mut fast, &stamped);
            assert_eq!(fast, stamped.to_json().to_string(), "variant {i}");
            let parsed = read_str(&fast).unwrap();
            assert_eq!(parsed, vec![stamped], "variant {i} round-trip");
        }
    }
}

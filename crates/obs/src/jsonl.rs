//! Newline-delimited JSON encoding of event streams.
//!
//! One [`StampedEvent`] per line, in recording order — the format written
//! by `wcp trace --events out.jsonl` and consumed by external analysis
//! tooling (or [`read_str`] here).

use std::io::{self, Write};

use crate::event::StampedEvent;
use crate::json::{FromJson, Json, JsonError, ToJson};

/// Writes events as JSONL to `out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write<W: Write>(out: &mut W, events: &[StampedEvent]) -> io::Result<()> {
    for event in events {
        writeln!(out, "{}", event.to_json())?;
    }
    Ok(())
}

/// Renders events as one JSONL string.
pub fn to_string(events: &[StampedEvent]) -> String {
    let mut buf = Vec::new();
    write(&mut buf, events).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

/// Parses a JSONL document back into events. Blank lines are skipped.
///
/// # Errors
///
/// Returns the first malformed line's error, annotated with its line
/// number.
pub fn read_str(input: &str) -> Result<Vec<StampedEvent>, JsonError> {
    let mut events = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| JsonError {
            message: format!("line {}: {}", lineno + 1, e.message),
            offset: e.offset,
        })?;
        events.push(StampedEvent::from_json(&value).map_err(|e| JsonError {
            message: format!("line {}: {}", lineno + 1, e.message),
            offset: 0,
        })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LogicalTime, TraceEvent};

    fn sample(n: u64) -> Vec<StampedEvent> {
        (0..n)
            .map(|i| StampedEvent {
                seq: i,
                monitor: (i % 3) as u32,
                time: LogicalTime::Tick(i * 2),
                wall_nanos: None,
                event: TraceEvent::Work { units: i },
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_text() {
        let events = sample(5);
        let text = to_string(&events);
        assert_eq!(text.lines().count(), 5);
        assert_eq!(read_str(&text).unwrap(), events);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", to_string(&sample(1)));
        assert_eq!(read_str(&text).unwrap().len(), 1);
    }

    #[test]
    fn malformed_lines_name_their_line() {
        let err = read_str("{\"seq\":0}\nnot json\n").unwrap_err();
        assert!(err.message.contains("line 1"), "{err}");
        let err = read_str(&format!("{}not json\n", to_string(&sample(1)))).unwrap_err();
        assert!(err.message.contains("line 2"), "{err}");
    }
}

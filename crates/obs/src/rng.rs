//! Seeded deterministic pseudo-random numbers.
//!
//! A splitmix64-seeded xoshiro256** generator replacing the external `rand`
//! stack for workload generation and simulated network latency. Not
//! cryptographic — determinism and uniformity are what the experiments
//! need. Equal seeds produce equal streams on every platform.

use std::ops::{Range, RangeInclusive};

/// A deterministic PRNG (xoshiro256**, seeded via splitmix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` (Lemire's multiply-shift with
    /// rejection). `bound` must be non-zero.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 || p.is_nan() {
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1..=max)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for k in (1..items.len()).rev() {
            let j = self.bounded(k as u64 + 1) as usize;
            items.swap(k, j);
        }
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, usize, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5..=5u64);
            assert_eq!(w, 5);
            let x = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = Rng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(3..3usize);
    }
}

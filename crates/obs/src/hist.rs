//! Log₂-bucket histograms and monotone counters.

use std::fmt;

use crate::json::{Json, ToJson};

/// A histogram with logarithmic (power-of-two) buckets.
///
/// Bucket `i` holds values `v` with `2^(i-1) ≤ v < 2^i` (bucket 0 holds
/// exactly `0`), so 65 fixed buckets cover the whole `u64` range with no
/// allocation. Good enough resolution for latency/queue-depth style
/// measurements and cheap to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        v => 64 - v.leading_zeros() as usize,
    }
}

/// Lower bound of bucket `i` (inclusive).
fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(floor, count)` pairs, lowest first.
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }

    /// One-line ASCII rendering: `[floor..] ▏bar count` per occupied bucket.
    pub fn render(&self, label: &str) -> String {
        if self.is_empty() {
            return format!("{label}: (no samples)\n");
        }
        let mut out = format!(
            "{label}: n={} min={} mean={:.1} max={}\n",
            self.count,
            self.min,
            self.mean().unwrap_or(0.0),
            self.max
        );
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let width = ((c * 40).div_ceil(peak)) as usize;
            out.push_str(&format!(
                "  {:>10} | {:<40} {}\n",
                format!("≥{}", bucket_floor(i)),
                "#".repeat(width),
                c
            ));
        }
        out
    }
}

impl ToJson for Log2Histogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(if self.count > 0 { self.min } else { 0 })),
            ("max", Json::UInt(self.max)),
            (
                "buckets",
                Json::Arr(
                    self.occupied()
                        .into_iter()
                        .map(|(floor, c)| {
                            Json::obj([("ge", Json::UInt(floor)), ("count", Json::UInt(c))])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render("histogram").trim_end())
    }
}

/// A small ordered set of named monotone counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(String, u64)>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => self.entries.push((name.to_string(), delta)),
        }
    }

    /// Increments the counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value (0 when never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// All counters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no counter exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl ToJson for Counters {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(n, v)| (n.clone(), Json::UInt(*v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(11), 1024);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        for v in [0, 1, 2, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 21.6).abs() < 1e-9);
        assert_eq!(h.occupied(), vec![(0, 1), (1, 1), (2, 1), (4, 1), (64, 1)]);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Log2Histogram::new();
        a.record(3);
        let mut b = Log2Histogram::new();
        b.record(1000);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Log2Histogram::new();
        for _ in 0..10 {
            h.record(4);
        }
        h.record(1);
        let text = h.render("delay");
        assert!(text.contains("delay: n=11"));
        assert!(text.contains("≥4"));
        assert!(text.contains('#'));
        assert_eq!(Log2Histogram::new().render("x"), "x: (no samples)\n");
    }

    #[test]
    fn histogram_json_shape() {
        let mut h = Log2Histogram::new();
        h.record(2);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            j.get("buckets").unwrap().as_array().unwrap()[0]
                .get("ge")
                .unwrap()
                .as_u64(),
            Some(2)
        );
    }

    #[test]
    fn counters_accumulate_in_order() {
        let mut c = Counters::new();
        c.incr("hops");
        c.add("hops", 4);
        c.add("polls", 2);
        assert_eq!(c.get("hops"), 5);
        assert_eq!(c.get("polls"), 2);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.len(), 2);
        let names: Vec<_> = c.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["hops", "polls"]);
        assert_eq!(c.to_json().to_string(), "{\"hops\":5,\"polls\":2}");
    }
}

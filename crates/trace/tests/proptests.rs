//! Property-based tests for the trace substrate.
//!
//! The key cross-checks: the vector-clock definition of consistency must
//! agree with the lattice (message-closure) definition, and the advancing-
//! cut ground truth must agree with exhaustive lattice search.

use proptest::prelude::*;
use wcp_clocks::{Cut, ProcessId};
use wcp_trace::generate::{generate, GeneratorConfig, Topology};
use wcp_trace::lattice::LatticeExplorer;
use wcp_trace::Wcp;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..5,   // processes
        1usize..7,   // events per process
        0.0f64..1.0, // send fraction
        0.0f64..0.5, // predicate density
        any::<u64>(),
        prop_oneof![
            Just(Topology::Uniform),
            Just(Topology::Ring),
            (1usize..3).prop_map(|d| Topology::Neighbors { degree: d }),
        ],
        proptest::option::of(0.0f64..1.0),
    )
        .prop_map(|(n, m, sf, pd, seed, topo, plant)| {
            let mut cfg = GeneratorConfig::new(n, m)
                .with_seed(seed)
                .with_send_fraction(sf)
                .with_predicate_density(pd)
                .with_topology(topo);
            if let Some(f) = plant {
                cfg = cfg.with_plant(f);
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated computation is structurally valid.
    #[test]
    fn generated_is_valid(cfg in arb_config()) {
        let g = generate(&cfg);
        prop_assert!(g.computation.validate().is_ok());
    }

    /// Vector-clock consistency coincides with message-closure consistency
    /// for arbitrary complete cuts.
    #[test]
    fn consistency_definitions_agree(cfg in arb_config(), picks in proptest::collection::vec(any::<u64>(), 8)) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let ex = LatticeExplorer::new(&g.computation);
        let n = g.computation.process_count();
        // Derive a few pseudorandom complete cuts from `picks`.
        for chunk in picks.chunks(n) {
            if chunk.len() < n { break; }
            let cut: Cut = (0..n)
                .map(|i| {
                    let span = a.interval_count(ProcessId::new(i as u32));
                    chunk[i] % span + 1
                })
                .collect();
            prop_assert_eq!(
                a.is_consistent(&cut),
                ex.is_consistent_cut(&cut),
                "cut {} disagrees", cut
            );
        }
    }

    /// The advancing-cut ground truth equals exhaustive lattice search, both
    /// for full-scope and partial-scope predicates.
    #[test]
    fn advancing_cut_matches_lattice(cfg in arb_config(), scope_n in 1usize..4) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));

        let via_clocks = a.first_satisfying_full_cut(&wcp);
        let Ok(via_lattice) = LatticeExplorer::new(&g.computation)
            .first_satisfying(&wcp, 200_000) else { return Ok(()); };
        prop_assert_eq!(&via_clocks, &via_lattice);

        // And the scope-only cut projects identically.
        let scoped = a.first_satisfying_cut(&wcp);
        prop_assert_eq!(scoped.is_some(), via_clocks.is_some());
        if let (Some(s), Some(f)) = (scoped, via_clocks) {
            prop_assert_eq!(wcp.project(&s), wcp.project(&f));
        }
    }

    /// A planted cut is always consistent, satisfying, and detection finds a
    /// cut no later than it.
    #[test]
    fn planted_cut_guarantees_detection(cfg in arb_config()) {
        let cfg = cfg.with_plant(0.5);
        let g = generate(&cfg);
        let planted = g.planted.clone().expect("plant requested");
        let a = g.computation.annotate();
        prop_assert!(a.is_consistent(&planted));
        let wcp = Wcp::over_all(&g.computation);
        let first = a.first_satisfying_full_cut(&wcp).expect("planted ⇒ detectable");
        prop_assert!(first.le(&planted), "first {} ≤ planted {}", first, planted);
        prop_assert!(wcp.holds_on(&g.computation, &first));
    }

    /// The first satisfying cut is the meet (componentwise minimum) of all
    /// satisfying cuts (linearity of conjunctive predicates).
    #[test]
    fn first_cut_is_minimum_of_all(cfg in arb_config()) {
        let g = generate(&cfg);
        let wcp = Wcp::over_all(&g.computation);
        let ex = LatticeExplorer::new(&g.computation);
        let Ok(all) = ex.all_satisfying(&wcp, 100_000) else { return Ok(()); };
        let a = g.computation.annotate();
        let first = a.first_satisfying_full_cut(&wcp);
        match (&first, all.is_empty()) {
            (None, true) => {}
            (Some(f), false) => {
                for cut in &all {
                    prop_assert!(f.le(cut), "{} not ≤ {}", f, cut);
                }
            }
            _ => prop_assert!(false, "lattice and clocks disagree on existence"),
        }
    }

    /// Happened-before is a strict partial order on sampled states.
    #[test]
    fn happened_before_is_partial_order(cfg in arb_config()) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let n = g.computation.process_count();
        let states: Vec<_> = (0..n)
            .flat_map(|i| {
                let p = ProcessId::new(i as u32);
                (1..=a.interval_count(p)).map(move |k| wcp_clocks::StateId::new(p, k))
            })
            .collect();
        for &x in &states {
            prop_assert!(!a.happened_before(x, x));
            for &y in &states {
                for &z in &states {
                    if a.happened_before(x, y) && a.happened_before(y, z) {
                        prop_assert!(a.happened_before(x, z));
                    }
                }
            }
        }
    }
}

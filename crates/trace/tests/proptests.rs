//! Randomized property tests for the trace substrate.
//!
//! The key cross-checks: the vector-clock definition of consistency must
//! agree with the lattice (message-closure) definition, and the advancing-
//! cut ground truth must agree with exhaustive lattice search. Each
//! property runs on dozens of random configurations drawn from a fixed
//! seed via `wcp_obs::rng::Rng`, so failures reproduce exactly.

use wcp_clocks::{Cut, ProcessId};
use wcp_obs::rng::Rng;
use wcp_trace::generate::{generate, GeneratorConfig, Topology};
use wcp_trace::lattice::LatticeExplorer;
use wcp_trace::Wcp;

const CASES: usize = 64;

fn rand_config(rng: &mut Rng) -> GeneratorConfig {
    let n = rng.gen_range(2usize..5);
    let m = rng.gen_range(1usize..7);
    let topo = match rng.gen_range(0u32..3) {
        0 => Topology::Uniform,
        1 => Topology::Ring,
        _ => Topology::Neighbors {
            degree: rng.gen_range(1usize..3),
        },
    };
    let mut cfg = GeneratorConfig::new(n, m)
        .with_seed(rng.next_u64())
        .with_send_fraction(rng.gen_f64())
        .with_predicate_density(rng.gen_f64() * 0.5)
        .with_topology(topo);
    if rng.gen_bool(0.5) {
        cfg = cfg.with_plant(rng.gen_f64());
    }
    cfg
}

/// Every generated computation is structurally valid.
#[test]
fn generated_is_valid() {
    let mut rng = Rng::seed_from_u64(21);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let g = generate(&cfg);
        assert!(g.computation.validate().is_ok(), "{cfg:?}");
    }
}

/// Vector-clock consistency coincides with message-closure consistency for
/// arbitrary complete cuts.
#[test]
fn consistency_definitions_agree() {
    let mut rng = Rng::seed_from_u64(22);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let ex = LatticeExplorer::new(&g.computation);
        let n = g.computation.process_count();
        for _ in 0..2 {
            // A pseudorandom complete cut.
            let cut: Cut = (0..n)
                .map(|i| {
                    let span = a.interval_count(ProcessId::new(i as u32));
                    rng.next_u64() % span + 1
                })
                .collect();
            assert_eq!(
                a.is_consistent(&cut),
                ex.is_consistent_cut(&cut),
                "cut {cut} disagrees"
            );
        }
    }
}

/// The advancing-cut ground truth equals exhaustive lattice search, both
/// for full-scope and partial-scope predicates.
#[test]
fn advancing_cut_matches_lattice() {
    let mut rng = Rng::seed_from_u64(23);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let scope_n = rng.gen_range(1usize..4);
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));

        let via_clocks = a.first_satisfying_full_cut(&wcp);
        let Ok(via_lattice) = LatticeExplorer::new(&g.computation).first_satisfying(&wcp, 200_000)
        else {
            continue;
        };
        assert_eq!(&via_clocks, &via_lattice);

        // And the scope-only cut projects identically.
        let scoped = a.first_satisfying_cut(&wcp);
        assert_eq!(scoped.is_some(), via_clocks.is_some());
        if let (Some(s), Some(f)) = (scoped, via_clocks) {
            assert_eq!(wcp.project(&s), wcp.project(&f));
        }
    }
}

/// A planted cut is always consistent, satisfying, and detection finds a
/// cut no later than it.
#[test]
fn planted_cut_guarantees_detection() {
    let mut rng = Rng::seed_from_u64(24);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng).with_plant(0.5);
        let g = generate(&cfg);
        let planted = g.planted.clone().expect("plant requested");
        let a = g.computation.annotate();
        assert!(a.is_consistent(&planted));
        let wcp = Wcp::over_all(&g.computation);
        let first = a
            .first_satisfying_full_cut(&wcp)
            .expect("planted ⇒ detectable");
        assert!(first.le(&planted), "first {first} ≤ planted {planted}");
        assert!(wcp.holds_on(&g.computation, &first));
    }
}

/// The first satisfying cut is the meet (componentwise minimum) of all
/// satisfying cuts (linearity of conjunctive predicates).
#[test]
fn first_cut_is_minimum_of_all() {
    let mut rng = Rng::seed_from_u64(25);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let g = generate(&cfg);
        let wcp = Wcp::over_all(&g.computation);
        let ex = LatticeExplorer::new(&g.computation);
        let Ok(all) = ex.all_satisfying(&wcp, 100_000) else {
            continue;
        };
        let a = g.computation.annotate();
        let first = a.first_satisfying_full_cut(&wcp);
        match (&first, all.is_empty()) {
            (None, true) => {}
            (Some(f), false) => {
                for cut in &all {
                    assert!(f.le(cut), "{f} not ≤ {cut}");
                }
            }
            _ => panic!("lattice and clocks disagree on existence"),
        }
    }
}

/// Happened-before is a strict partial order on sampled states.
#[test]
fn happened_before_is_partial_order() {
    let mut rng = Rng::seed_from_u64(26);
    for _ in 0..16 {
        let cfg = rand_config(&mut rng);
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let n = g.computation.process_count();
        let states: Vec<_> = (0..n)
            .flat_map(|i| {
                let p = ProcessId::new(i as u32);
                (1..=a.interval_count(p)).map(move |k| wcp_clocks::StateId::new(p, k))
            })
            .collect();
        for &x in &states {
            assert!(!a.happened_before(x, x));
            for &y in &states {
                for &z in &states {
                    if a.happened_before(x, y) && a.happened_before(y, z) {
                        assert!(a.happened_before(x, z));
                    }
                }
            }
        }
    }
}

//! Communication events.

use std::fmt;

use wcp_clocks::ProcessId;
use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

/// Globally unique identifier of an application message within one
/// computation.
///
/// # Example
///
/// ```rust
/// use wcp_trace::MsgId;
/// let m = MsgId::new(4);
/// assert_eq!(m.to_string(), "m4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgId(u64);

impl MsgId {
    /// Creates a message identifier from a raw index.
    pub const fn new(id: u64) -> Self {
        MsgId(id)
    }

    /// Returns the raw index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

// A `MsgId` travels on the wire as a bare integer.
impl ToJson for MsgId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for MsgId {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_u64().map(MsgId)
    }
}

/// One communication event in a process's execution.
///
/// Internal events are not represented: following Figure 2 of the paper,
/// clocks advance only at communication events, so internal activity is
/// folded into the per-interval predicate flags of
/// [`ProcessTrace`](crate::ProcessTrace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Send message `msg` to process `to`.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message identifier (unique within the computation).
        msg: MsgId,
    },
    /// Receive message `msg`, which was sent by process `from`.
    Receive {
        /// Originating process (redundant with the matching `Send`; checked
        /// by [`Computation::validate`](crate::Computation::validate)).
        from: ProcessId,
        /// Message identifier.
        msg: MsgId,
    },
}

impl Event {
    /// Returns the message identifier this event carries.
    pub fn msg(&self) -> MsgId {
        match *self {
            Event::Send { msg, .. } | Event::Receive { msg, .. } => msg,
        }
    }

    /// `true` iff this is a send event.
    pub fn is_send(&self) -> bool {
        matches!(self, Event::Send { .. })
    }

    /// `true` iff this is a receive event.
    pub fn is_receive(&self) -> bool {
        matches!(self, Event::Receive { .. })
    }

    /// The remote peer of this event (destination of a send, source of a
    /// receive).
    pub fn peer(&self) -> ProcessId {
        match *self {
            Event::Send { to, .. } => to,
            Event::Receive { from, .. } => from,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Send { to, msg } => write!(f, "send({msg})→{to}"),
            Event::Receive { from, msg } => write!(f, "recv({msg})←{from}"),
        }
    }
}

// Externally tagged, matching the previous serde derive:
// `{"Send":{"to":1,"msg":0}}` / `{"Receive":{"from":0,"msg":0}}`.
impl ToJson for Event {
    fn to_json(&self) -> Json {
        match *self {
            Event::Send { to, msg } => Json::obj([(
                "Send",
                Json::obj([("to", to.to_json()), ("msg", msg.to_json())]),
            )]),
            Event::Receive { from, msg } => Json::obj([(
                "Receive",
                Json::obj([("from", from.to_json()), ("msg", msg.to_json())]),
            )]),
        }
    }
}

impl FromJson for Event {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let pairs = value
            .as_object()
            .ok_or_else(|| JsonError::shape(format!("expected event object, got {value}")))?;
        match pairs {
            [(tag, payload)] if tag == "Send" => Ok(Event::Send {
                to: ProcessId::from_json(payload.field("to")?)?,
                msg: MsgId::from_json(payload.field("msg")?)?,
            }),
            [(tag, payload)] if tag == "Receive" => Ok(Event::Receive {
                from: ProcessId::from_json(payload.field("from")?)?,
                msg: MsgId::from_json(payload.field("msg")?)?,
            }),
            _ => Err(JsonError::shape(format!(
                "expected Send or Receive event, got {value}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_display_and_order() {
        assert_eq!(MsgId::new(3).to_string(), "m3");
        assert!(MsgId::new(1) < MsgId::new(2));
        assert_eq!(MsgId::new(5).as_u64(), 5);
    }

    #[test]
    fn event_accessors() {
        let s = Event::Send {
            to: ProcessId::new(1),
            msg: MsgId::new(0),
        };
        let r = Event::Receive {
            from: ProcessId::new(0),
            msg: MsgId::new(0),
        };
        assert!(s.is_send() && !s.is_receive());
        assert!(r.is_receive() && !r.is_send());
        assert_eq!(s.msg(), r.msg());
        assert_eq!(s.peer(), ProcessId::new(1));
        assert_eq!(r.peer(), ProcessId::new(0));
    }

    #[test]
    fn event_display() {
        let s = Event::Send {
            to: ProcessId::new(1),
            msg: MsgId::new(2),
        };
        assert_eq!(s.to_string(), "send(m2)→P1");
    }
}

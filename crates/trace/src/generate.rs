//! Seeded random workload generators.
//!
//! The paper evaluates its algorithms analytically on arbitrary runs of a
//! distributed program; no traces are published. This module is the repo's
//! substitute (see DESIGN.md §5): a deterministic, seeded generator that
//! produces valid [`Computation`]s with controllable size (`N`, `m`),
//! communication topology, predicate density, and — crucially for
//! experiments — an optionally *planted* consistent cut on which every local
//! predicate is true, guaranteeing the WCP is detectable.
//!
//! Generation works by forward-simulating a legal interleaving, so every
//! produced trace is realizable by construction; a planted cut is the vector
//! of per-process positions at one instant of that interleaving, hence
//! consistent by construction.
//!
//! # Example
//!
//! ```rust
//! use wcp_trace::generate::{generate, GeneratorConfig, Topology};
//!
//! let cfg = GeneratorConfig::new(4, 10)
//!     .with_seed(42)
//!     .with_topology(Topology::Ring)
//!     .with_plant(0.5);
//! let generated = generate(&cfg);
//! assert!(generated.computation.validate().is_ok());
//! let planted = generated.planted.expect("plant requested");
//! assert!(generated.computation.annotate().is_consistent(&planted));
//! ```

use wcp_clocks::{Cut, ProcessId};
use wcp_obs::json::{FromJson, Json, JsonError, ToJson};
use wcp_obs::rng::Rng;

use crate::computation::{Computation, ProcessTrace};
use crate::event::{Event, MsgId};

/// Communication pattern of the generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every send targets a uniformly random other process.
    Uniform,
    /// Process `i` always sends to `(i + 1) mod N`.
    Ring,
    /// The first `servers` processes are servers; clients send to a random
    /// server, servers send to a random client.
    ClientServer {
        /// Number of server processes (must be `≥ 1` and `< N`).
        servers: usize,
    },
    /// Every send targets one of the `degree` nearest ring neighbours.
    Neighbors {
        /// Neighbourhood radius (`≥ 1`).
        degree: usize,
    },
    /// Bulk-synchronous phases: processes exchange uniformly within a
    /// phase, then everyone synchronizes through process 0 (worker → P0,
    /// P0 → worker) before the next phase — the communication shape of BSP
    /// programs, producing narrow "waists" in the global-state lattice.
    Phased {
        /// Communication steps per process between barriers (`≥ 1`).
        phase_len: usize,
    },
}

// A `Topology` travels in corpus case files as either a bare string
// (`"uniform"`, `"ring"`) or a one-key object (`{"client_server": K}`,
// `{"neighbors": K}`, `{"phased": K}`).
impl ToJson for Topology {
    fn to_json(&self) -> Json {
        match *self {
            Topology::Uniform => Json::Str("uniform".to_string()),
            Topology::Ring => Json::Str("ring".to_string()),
            Topology::ClientServer { servers } => {
                Json::obj([("client_server", Json::UInt(servers as u64))])
            }
            Topology::Neighbors { degree } => Json::obj([("neighbors", Json::UInt(degree as u64))]),
            Topology::Phased { phase_len } => Json::obj([("phased", Json::UInt(phase_len as u64))]),
        }
    }
}

impl FromJson for Topology {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = value {
            return match s.as_str() {
                "uniform" => Ok(Topology::Uniform),
                "ring" => Ok(Topology::Ring),
                other => Err(JsonError::shape(format!("unknown topology `{other}`"))),
            };
        }
        match value.as_object() {
            Some([(tag, payload)]) => {
                let k = payload.expect_u64()? as usize;
                match tag.as_str() {
                    "client_server" => Ok(Topology::ClientServer { servers: k }),
                    "neighbors" => Ok(Topology::Neighbors { degree: k }),
                    "phased" => Ok(Topology::Phased { phase_len: k }),
                    other => Err(JsonError::shape(format!("unknown topology `{other}`"))),
                }
            }
            _ => Err(JsonError::shape(format!(
                "expected a topology string or one-key object, got {value}"
            ))),
        }
    }
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of processes (`N`).
    pub processes: usize,
    /// Communication events per process (the paper's `m`).
    pub events_per_process: usize,
    /// Probability that a step is a send rather than a receive (receives
    /// fall back to sends when no message is pending). Clamped to `[0, 1]`.
    pub send_fraction: f64,
    /// Per-interval probability that the local predicate is true.
    pub predicate_density: f64,
    /// Communication pattern.
    pub topology: Topology,
    /// If set, plant a consistent all-true cut at this fraction of the run
    /// (`0.0` = start, `1.0` = end).
    pub plant_at: Option<f64>,
    /// RNG seed; equal configs produce equal computations.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A uniform-topology workload of `processes × events_per_process`
    /// events with sparse predicates and no planted cut.
    pub fn new(processes: usize, events_per_process: usize) -> Self {
        GeneratorConfig {
            processes,
            events_per_process,
            send_fraction: 0.5,
            predicate_density: 0.05,
            topology: Topology::Uniform,
            plant_at: None,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the communication topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the per-interval predicate probability.
    pub fn with_predicate_density(mut self, density: f64) -> Self {
        self.predicate_density = density;
        self
    }

    /// Sets the send/receive mix.
    pub fn with_send_fraction(mut self, fraction: f64) -> Self {
        self.send_fraction = fraction;
        self
    }

    /// Requests a planted satisfying cut at `fraction` of the run.
    pub fn with_plant(mut self, fraction: f64) -> Self {
        self.plant_at = Some(fraction);
        self
    }
}

// A `GeneratorConfig` round-trips through JSON exactly (floats use the
// shortest-roundtrip form), so a corpus case file regenerates the identical
// computation.
impl ToJson for GeneratorConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("processes", Json::UInt(self.processes as u64)),
            ("events", Json::UInt(self.events_per_process as u64)),
            ("send_fraction", Json::Float(self.send_fraction)),
            ("predicate_density", Json::Float(self.predicate_density)),
            ("topology", self.topology.to_json()),
            (
                "plant_at",
                match self.plant_at {
                    Some(f) => Json::Float(f),
                    None => Json::Null,
                },
            ),
            ("seed", Json::UInt(self.seed)),
        ])
    }
}

impl FromJson for GeneratorConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let f64_field = |name: &str| -> Result<f64, JsonError> {
            value
                .field(name)?
                .as_f64()
                .ok_or_else(|| JsonError::shape(format!("{name}: expected a number")))
        };
        let plant_at = match value.field("plant_at")? {
            Json::Null => None,
            other => Some(
                other
                    .as_f64()
                    .ok_or_else(|| JsonError::shape("plant_at: expected a number or null"))?,
            ),
        };
        Ok(GeneratorConfig {
            processes: value.field("processes")?.expect_u64()? as usize,
            events_per_process: value.field("events")?.expect_u64()? as usize,
            send_fraction: f64_field("send_fraction")?,
            predicate_density: f64_field("predicate_density")?,
            topology: Topology::from_json(value.field("topology")?)?,
            plant_at,
            seed: value.field("seed")?.expect_u64()?,
        })
    }
}

/// Output of [`generate`]: the computation plus the planted cut, if one was
/// requested.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The generated computation (always valid).
    pub computation: Computation,
    /// The planted consistent cut with all predicate flags true, if
    /// [`GeneratorConfig::plant_at`] was set.
    pub planted: Option<Cut>,
}

/// Generates a valid computation according to `config`.
///
/// # Panics
///
/// Panics if the topology is inconsistent with the process count
/// (`ClientServer` with `servers == 0` or `servers >= N`, `Neighbors` with
/// `degree == 0`).
pub fn generate(config: &GeneratorConfig) -> Generated {
    if let Topology::Phased { phase_len } = config.topology {
        return generate_phased(config, phase_len);
    }
    let n = config.processes;
    let mut rng = Rng::seed_from_u64(config.seed);
    let send_fraction = config.send_fraction.clamp(0.0, 1.0);

    // A single process cannot exchange messages; its trace is one interval.
    let quota = if n >= 2 { config.events_per_process } else { 0 };

    if let Topology::ClientServer { servers } = config.topology {
        assert!(
            servers >= 1 && servers < n.max(1),
            "ClientServer requires 1 <= servers < N"
        );
    }
    if let Topology::Neighbors { degree } = config.topology {
        assert!(degree >= 1, "Neighbors requires degree >= 1");
    }

    let mut events: Vec<Vec<Event>> = vec![Vec::new(); n];
    // Messages sent and not yet received, per destination.
    let mut pending: Vec<Vec<(MsgId, ProcessId)>> = vec![Vec::new(); n];
    let mut next_msg = 0u64;
    let total_steps = n * quota;
    let plant_step = config
        .plant_at
        .map(|f| ((total_steps as f64) * f.clamp(0.0, 1.0)).round() as usize);
    let mut planted: Option<Cut> = None;

    let mut remaining: Vec<usize> = vec![quota; n];
    let mut live: Vec<usize> = (0..n).filter(|&i| remaining[i] > 0).collect();
    let mut step = 0usize;

    // Plant at step 0 if requested at fraction 0.
    if plant_step == Some(0) {
        planted = Some(snapshot_cut(&events));
    }

    while !live.is_empty() {
        let slot = rng.gen_range(0..live.len());
        let i = live[slot];
        let pid = ProcessId::new(i as u32);

        let do_send = pending[i].is_empty() || rng.gen_bool(send_fraction);
        if do_send {
            let to = pick_target(pid, n, config.topology, &mut rng);
            let msg = MsgId::new(next_msg);
            next_msg += 1;
            events[i].push(Event::Send { to, msg });
            pending[to.index()].push((msg, pid));
        } else {
            let k = rng.gen_range(0..pending[i].len());
            let (msg, from) = pending[i].swap_remove(k);
            events[i].push(Event::Receive { from, msg });
        }

        remaining[i] -= 1;
        if remaining[i] == 0 {
            live.swap_remove(slot);
        }
        step += 1;
        if plant_step == Some(step) {
            planted = Some(snapshot_cut(&events));
        }
    }

    // If the plant step lands beyond the last step (fraction 1.0 with
    // rounding), take the final positions.
    if config.plant_at.is_some() && planted.is_none() {
        planted = Some(snapshot_cut(&events));
    }

    // Predicate flags: Bernoulli per interval, then overwrite the planted
    // cut's intervals with true.
    let mut traces: Vec<ProcessTrace> = events
        .into_iter()
        .map(|evts| {
            let intervals = evts.len() + 1;
            let pred = (0..intervals)
                .map(|_| rng.gen_bool(config.predicate_density.clamp(0.0, 1.0)))
                .collect();
            ProcessTrace { events: evts, pred }
        })
        .collect();
    if let Some(cut) = &planted {
        for (i, trace) in traces.iter_mut().enumerate() {
            let k = cut[ProcessId::new(i as u32)];
            trace.pred[(k - 1) as usize] = true;
        }
    }

    let computation = Computation::from_traces(traces);
    debug_assert!(computation.validate().is_ok());
    Generated {
        computation,
        planted,
    }
}

/// The consistent cut given by every process's current interval during
/// generation (events so far + 1).
fn snapshot_cut(events: &[Vec<Event>]) -> Cut {
    events.iter().map(|e| e.len() as u64 + 1).collect()
}

fn pick_target(from: ProcessId, n: usize, topology: Topology, rng: &mut Rng) -> ProcessId {
    let i = from.index();
    let to = match topology {
        Topology::Uniform => {
            let mut t = rng.gen_range(0..n - 1);
            if t >= i {
                t += 1;
            }
            t
        }
        Topology::Ring => (i + 1) % n,
        Topology::ClientServer { servers } => {
            if i < servers {
                // server → random client
                servers + rng.gen_range(0..n - servers)
            } else {
                // client → random server
                rng.gen_range(0..servers)
            }
        }
        Topology::Neighbors { degree } => {
            let offset = rng.gen_range(1..=degree.min(n - 1));
            if rng.gen_bool(0.5) {
                (i + offset) % n
            } else {
                (i + n - offset) % n
            }
        }
        Topology::Phased { .. } => unreachable!("phased generation has its own path"),
    };
    ProcessId::new(to as u32)
}

/// Bulk-synchronous generation: uniform worker↔worker traffic inside each
/// phase, then a barrier through process 0 (`worker → P0 → worker`). A
/// planted cut lands at a barrier boundary — a natural consistent cut.
fn generate_phased(config: &GeneratorConfig, phase_len: usize) -> Generated {
    use crate::builder::ComputationBuilder;

    let n = config.processes;
    assert!(phase_len >= 1, "Phased requires phase_len >= 1");
    let mut rng = Rng::seed_from_u64(config.seed);
    if n < 2 {
        // No communication possible; fall back to a single-interval trace.
        let computation = ComputationBuilder::new(n).build_unchecked();
        return Generated {
            computation,
            planted: config.plant_at.map(|_| snapshot_cut(&vec![Vec::new(); n])),
        };
    }

    let quota = config.events_per_process;
    // Per phase each worker performs ≈ 2·phase_len intra-phase events plus
    // 2 barrier events; plan the plant phase from that estimate.
    let per_phase = 2 * phase_len + 2;
    let planned_phases = quota.div_ceil(per_phase).max(1);
    let plant_phase = config
        .plant_at
        .map(|f| ((planned_phases as f64) * f.clamp(0.0, 1.0)).round() as usize);

    let mut b = ComputationBuilder::new(n);
    let mut planted: Option<Cut> = None;
    let current_cut = |b: &ComputationBuilder| -> Cut {
        (0..n)
            .map(|i| b.current_interval(ProcessId::new(i as u32)))
            .collect()
    };
    if plant_phase == Some(0) {
        planted = Some(current_cut(&b));
    }

    for phase in 1..=planned_phases {
        // Intra-phase worker ↔ worker traffic (needs ≥ 2 workers).
        if n > 2 {
            let mut deliveries = Vec::new();
            for w in 1..n {
                for _ in 0..phase_len {
                    let mut peer = rng.gen_range(1..n - 1);
                    if peer >= w {
                        peer += 1;
                    }
                    let m = b.send(ProcessId::new(w as u32), ProcessId::new(peer as u32));
                    deliveries.push((peer, m));
                }
            }
            // Deliver all intra-phase messages in a random order.
            for k in (1..deliveries.len()).rev() {
                deliveries.swap(k, rng.gen_range(0..=k));
            }
            for (dest, m) in deliveries {
                b.receive(ProcessId::new(dest as u32), m);
            }
        }
        // Barrier through P0.
        for w in 1..n {
            let m = b.send(ProcessId::new(w as u32), ProcessId::new(0));
            b.receive(ProcessId::new(0), m);
        }
        for w in 1..n {
            let m = b.send(ProcessId::new(0), ProcessId::new(w as u32));
            b.receive(ProcessId::new(w as u32), m);
        }
        if plant_phase == Some(phase) {
            planted = Some(current_cut(&b));
        }
    }
    if config.plant_at.is_some() && planted.is_none() {
        planted = Some(current_cut(&b));
    }

    let computation = b.build().expect("phased construction is valid");
    // Apply Bernoulli predicate flags plus the planted overwrite.
    let mut traces = computation.traces().to_vec();
    for trace in &mut traces {
        for flag in &mut trace.pred {
            *flag = rng.gen_bool(config.predicate_density.clamp(0.0, 1.0));
        }
    }
    if let Some(cut) = &planted {
        for (i, trace) in traces.iter_mut().enumerate() {
            let k = cut[ProcessId::new(i as u32)];
            trace.pred[(k - 1) as usize] = true;
        }
    }
    Generated {
        computation: Computation::from_traces(traces),
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Wcp;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = GeneratorConfig::new(5, 20).with_seed(7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.computation, b.computation);
        let c = generate(&cfg.clone().with_seed(8));
        assert_ne!(a.computation, c.computation);
    }

    #[test]
    fn generated_computations_are_valid() {
        for seed in 0..10 {
            let cfg = GeneratorConfig::new(6, 15).with_seed(seed);
            let g = generate(&cfg);
            assert!(g.computation.validate().is_ok(), "seed {seed}");
            assert_eq!(g.computation.process_count(), 6);
            for (_, t) in g.computation.iter() {
                assert_eq!(t.event_count(), 15);
            }
        }
    }

    #[test]
    fn planted_cut_is_consistent_and_true() {
        for seed in 0..10 {
            let cfg = GeneratorConfig::new(5, 12)
                .with_seed(seed)
                .with_predicate_density(0.0)
                .with_plant(0.5);
            let g = generate(&cfg);
            let cut = g.planted.expect("plant requested");
            let a = g.computation.annotate();
            assert!(a.is_consistent(&cut), "seed {seed}: {cut}");
            assert!(Wcp::over_all(&g.computation).holds_on(&g.computation, &cut));
            // With density 0 the planted cut is the ONLY source of truth, so
            // detection must succeed.
            assert!(a
                .first_satisfying_cut(&Wcp::over_all(&g.computation))
                .is_some());
        }
    }

    #[test]
    fn plant_at_extremes() {
        for frac in [0.0, 1.0] {
            let cfg = GeneratorConfig::new(3, 8)
                .with_seed(1)
                .with_predicate_density(0.0)
                .with_plant(frac);
            let g = generate(&cfg);
            let cut = g.planted.unwrap();
            assert!(g.computation.annotate().is_consistent(&cut));
        }
    }

    #[test]
    fn ring_topology_only_sends_to_successor() {
        let cfg = GeneratorConfig::new(4, 10)
            .with_seed(3)
            .with_topology(Topology::Ring);
        let g = generate(&cfg);
        for (p, t) in g.computation.iter() {
            for e in &t.events {
                if let Event::Send { to, .. } = e {
                    assert_eq!(to.index(), (p.index() + 1) % 4);
                }
            }
        }
    }

    #[test]
    fn client_server_respects_roles() {
        let cfg = GeneratorConfig::new(5, 10)
            .with_seed(3)
            .with_topology(Topology::ClientServer { servers: 2 });
        let g = generate(&cfg);
        for (p, t) in g.computation.iter() {
            for e in &t.events {
                if let Event::Send { to, .. } = e {
                    if p.index() < 2 {
                        assert!(to.index() >= 2, "server sent to server");
                    } else {
                        assert!(to.index() < 2, "client sent to client");
                    }
                }
            }
        }
    }

    #[test]
    fn neighbors_topology_stays_local() {
        let cfg = GeneratorConfig::new(8, 10)
            .with_seed(5)
            .with_topology(Topology::Neighbors { degree: 1 });
        let g = generate(&cfg);
        for (p, t) in g.computation.iter() {
            for e in &t.events {
                if let Event::Send { to, .. } = e {
                    let d = (p.index() as i64 - to.index() as i64).rem_euclid(8);
                    assert!(d == 1 || d == 7, "send distance {d}");
                }
            }
        }
    }

    #[test]
    fn single_process_degenerates_gracefully() {
        let g = generate(&GeneratorConfig::new(1, 10).with_seed(0));
        assert_eq!(g.computation.total_events(), 0);
        assert!(g.computation.validate().is_ok());
    }

    #[test]
    fn predicate_density_extremes() {
        let g0 = generate(&GeneratorConfig::new(3, 5).with_predicate_density(0.0));
        assert_eq!(g0.computation.stats().true_intervals, 0);
        let g1 = generate(&GeneratorConfig::new(3, 5).with_predicate_density(1.0));
        let s = g1.computation.stats();
        assert_eq!(s.true_intervals, s.total_intervals);
    }

    #[test]
    fn phased_topology_generates_valid_barriered_runs() {
        for seed in 0..8 {
            let cfg = GeneratorConfig::new(5, 20)
                .with_seed(seed)
                .with_topology(Topology::Phased { phase_len: 2 })
                .with_predicate_density(0.1)
                .with_plant(0.5);
            let g = generate(&cfg);
            assert!(g.computation.validate().is_ok(), "seed {seed}");
            let cut = g.planted.expect("plant requested");
            let a = g.computation.annotate();
            assert!(a.is_consistent(&cut), "seed {seed}: {cut}");
            assert!(Wcp::over_all(&g.computation).holds_on(&g.computation, &cut));
            // Barrier traffic touches every process.
            for (_, t) in g.computation.iter() {
                assert!(t.event_count() > 0, "seed {seed}");
            }
        }
    }

    #[test]
    fn phased_plant_extremes() {
        for frac in [0.0, 1.0] {
            let cfg = GeneratorConfig::new(4, 12)
                .with_seed(3)
                .with_topology(Topology::Phased { phase_len: 1 })
                .with_predicate_density(0.0)
                .with_plant(frac);
            let g = generate(&cfg);
            let cut = g.planted.unwrap();
            assert!(g.computation.annotate().is_consistent(&cut));
        }
    }

    #[test]
    fn send_fraction_one_never_receives() {
        let g = generate(&GeneratorConfig::new(3, 10).with_send_fraction(1.0));
        assert_eq!(g.computation.total_messages(), g.computation.total_events());
    }

    #[test]
    fn config_json_roundtrip_regenerates_identically() {
        let topologies = [
            Topology::Uniform,
            Topology::Ring,
            Topology::ClientServer { servers: 2 },
            Topology::Neighbors { degree: 3 },
            Topology::Phased { phase_len: 2 },
        ];
        for (i, topo) in topologies.into_iter().enumerate() {
            let mut cfg = GeneratorConfig::new(5, 9)
                .with_seed(0xC0FFEE + i as u64)
                .with_send_fraction(0.1 + 0.17 * i as f64)
                .with_predicate_density(0.05 + 0.11 * i as f64)
                .with_topology(topo);
            if i % 2 == 0 {
                cfg = cfg.with_plant(0.3 + 0.13 * i as f64);
            }
            let json = cfg.to_json().pretty();
            let back = GeneratorConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, cfg, "{json}");
            assert_eq!(generate(&back).computation, generate(&cfg).computation);
        }
    }

    #[test]
    fn config_json_rejects_malformed() {
        assert!(Topology::from_json(&Json::Str("hex".into())).is_err());
        assert!(Topology::from_json(&Json::UInt(3)).is_err());
        assert!(Topology::from_json(&Json::obj([("mesh", Json::UInt(1))])).is_err());
        let mut json = GeneratorConfig::new(2, 2).to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "seed");
        }
        assert!(GeneratorConfig::from_json(&json).is_err());
    }
}

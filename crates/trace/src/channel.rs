//! Channel states of a cut.
//!
//! The paper's companion work (reference \[6\], *Detecting Conjunctive
//! Channel Predicates*) generalizes WCPs with predicates over **channel
//! states**: the multiset of messages sent but not yet received across a
//! cut. This module computes those states from a recorded computation; the
//! detector lives in `wcp-detect::gcp`.

use std::collections::HashMap;
use std::fmt;

use wcp_clocks::{Cut, ProcessId};
use wcp_obs::json::{Json, ToJson};

use crate::computation::Computation;
use crate::event::{Event, MsgId};

/// A directed channel between two processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
}

impl ChannelId {
    /// Creates the channel `from → to`.
    pub const fn new(from: ProcessId, to: ProcessId) -> Self {
        ChannelId { from, to }
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.from, self.to)
    }
}

impl ToJson for ChannelId {
    fn to_json(&self) -> Json {
        Json::obj([("from", self.from.to_json()), ("to", self.to.to_json())])
    }
}

/// One message's lifecycle on a channel: the 1-based send event index on
/// the sender, and the 1-based receive event index on the receiver
/// (`None` if never received in this run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageSpan {
    /// The message.
    pub msg: MsgId,
    /// 1-based index of the send event on `channel.from`.
    pub sent_at: u64,
    /// 1-based index of the receive event on `channel.to`, if received.
    pub received_at: Option<u64>,
}

impl MessageSpan {
    /// Whether this message is in flight across `cut`: sent below the cut
    /// on the sender and not yet received below the cut on the receiver.
    ///
    /// A process at interval `k` has executed events `1 ..= k−1`.
    pub fn in_flight(&self, sender_interval: u64, receiver_interval: u64) -> bool {
        self.sent_at < sender_interval && self.received_at.is_none_or(|r| r >= receiver_interval)
    }
}

/// Per-channel message index of a computation, for constant-time-ish
/// channel-state queries against cuts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelIndex {
    spans: HashMap<ChannelId, Vec<MessageSpan>>,
    n: usize,
}

impl ChannelIndex {
    /// Builds the index for `computation` (which must be valid).
    pub fn new(computation: &Computation) -> Self {
        let mut recv_at: HashMap<MsgId, u64> = HashMap::new();
        for (_, trace) in computation.iter() {
            for (e, ev) in trace.events.iter().enumerate() {
                if let Event::Receive { msg, .. } = *ev {
                    recv_at.insert(msg, e as u64 + 1);
                }
            }
        }
        let mut spans: HashMap<ChannelId, Vec<MessageSpan>> = HashMap::new();
        for (p, trace) in computation.iter() {
            for (e, ev) in trace.events.iter().enumerate() {
                if let Event::Send { to, msg } = *ev {
                    spans
                        .entry(ChannelId::new(p, to))
                        .or_default()
                        .push(MessageSpan {
                            msg,
                            sent_at: e as u64 + 1,
                            received_at: recv_at.get(&msg).copied(),
                        });
                }
            }
        }
        ChannelIndex {
            spans,
            n: computation.process_count(),
        }
    }

    /// All channels that carried at least one message.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.spans.keys().copied()
    }

    /// Message spans of one channel (empty slice if the channel is unused).
    pub fn spans(&self, channel: ChannelId) -> &[MessageSpan] {
        self.spans.get(&channel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of messages in flight on `channel` across `cut`.
    ///
    /// # Panics
    ///
    /// Panics if the cut does not cover the channel's endpoints with
    /// nonzero intervals.
    pub fn in_flight(&self, channel: ChannelId, cut: &Cut) -> usize {
        let si = cut.get(channel.from).expect("cut covers sender");
        let ri = cut.get(channel.to).expect("cut covers receiver");
        assert!(si >= 1 && ri >= 1, "channel endpoints must have states");
        self.spans(channel)
            .iter()
            .filter(|s| s.in_flight(si, ri))
            .count()
    }

    /// The messages in flight on `channel` across `cut`, in send order.
    pub fn in_flight_messages(&self, channel: ChannelId, cut: &Cut) -> Vec<MsgId> {
        let si = cut.get(channel.from).expect("cut covers sender");
        let ri = cut.get(channel.to).expect("cut covers receiver");
        self.spans(channel)
            .iter()
            .filter(|s| s.in_flight(si, ri))
            .map(|s| s.msg)
            .collect()
    }

    /// Total messages in flight over **all** channels across `cut` — zero
    /// exactly when the cut is quiescent (the key condition of distributed
    /// termination detection).
    pub fn total_in_flight(&self, cut: &Cut) -> usize {
        self.spans.keys().map(|&ch| self.in_flight(ch, cut)).sum()
    }

    /// Number of processes of the underlying computation.
    pub fn process_count(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// P0 sends m0, m1 to P1; P1 receives m0 only.
    fn setup() -> Computation {
        let mut b = ComputationBuilder::new(2);
        let m0 = b.send(p(0), p(1));
        let _m1 = b.send(p(0), p(1));
        b.receive(p(1), m0);
        b.build().unwrap()
    }

    #[test]
    fn spans_record_send_and_receive_indices() {
        let c = setup();
        let idx = ChannelIndex::new(&c);
        let ch = ChannelId::new(p(0), p(1));
        let spans = idx.spans(ch);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].sent_at, 1);
        assert_eq!(spans[0].received_at, Some(1));
        assert_eq!(spans[1].sent_at, 2);
        assert_eq!(spans[1].received_at, None);
        assert_eq!(idx.channels().count(), 1);
        assert_eq!(idx.process_count(), 2);
    }

    #[test]
    fn in_flight_tracks_the_cut() {
        let c = setup();
        let idx = ChannelIndex::new(&c);
        let ch = ChannelId::new(p(0), p(1));
        // Before anything: nothing in flight.
        assert_eq!(idx.in_flight(ch, &Cut::from_indices(vec![1, 1])), 0);
        // After first send, before the receive: m0 in flight.
        assert_eq!(idx.in_flight(ch, &Cut::from_indices(vec![2, 1])), 1);
        // After both sends, before the receive: both in flight.
        assert_eq!(idx.in_flight(ch, &Cut::from_indices(vec![3, 1])), 2);
        // After both sends and the receive: only the unreceived m1.
        assert_eq!(idx.in_flight(ch, &Cut::from_indices(vec![3, 2])), 1);
        assert_eq!(
            idx.in_flight_messages(ch, &Cut::from_indices(vec![3, 2])),
            vec![MsgId::new(1)]
        );
    }

    #[test]
    fn total_in_flight_sums_channels() {
        let mut b = ComputationBuilder::new(3);
        b.send(p(0), p(1));
        b.send(p(2), p(1));
        let c = b.build().unwrap();
        let idx = ChannelIndex::new(&c);
        assert_eq!(idx.total_in_flight(&Cut::from_indices(vec![2, 1, 2])), 2);
        assert_eq!(idx.total_in_flight(&Cut::from_indices(vec![1, 1, 1])), 0);
    }

    #[test]
    fn unused_channel_is_empty() {
        let c = setup();
        let idx = ChannelIndex::new(&c);
        let unused = ChannelId::new(p(1), p(0));
        assert!(idx.spans(unused).is_empty());
        assert_eq!(idx.in_flight(unused, &Cut::from_indices(vec![3, 2])), 0);
    }

    #[test]
    fn channel_id_display() {
        assert_eq!(ChannelId::new(p(0), p(2)).to_string(), "P0→P2");
    }
}

//! Fluent construction of computations.

use wcp_clocks::ProcessId;

use crate::computation::{Computation, ComputationError, ProcessTrace};
use crate::event::{Event, MsgId};

/// Builds a [`Computation`] by scripting events in program order.
///
/// Message identifiers are assigned automatically by [`send`](Self::send);
/// pass the returned [`MsgId`] to [`receive`](Self::receive) on the
/// destination process. Predicate flags default to `false` and are raised
/// for the *current* interval of a process with
/// [`mark_true`](Self::mark_true).
///
/// # Example
///
/// ```rust
/// use wcp_clocks::ProcessId;
/// use wcp_trace::ComputationBuilder;
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut b = ComputationBuilder::new(2);
/// let m = b.send(p0, p1);
/// b.receive(p1, m);
/// b.mark_true(p1); // predicate true in P1's interval 2 (after the receive)
/// let c = b.build()?;
/// assert_eq!(c.total_messages(), 1);
/// # Ok::<(), wcp_trace::ComputationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ComputationBuilder {
    traces: Vec<ProcessTrace>,
    next_msg: u64,
}

impl ComputationBuilder {
    /// Starts a computation over `n` processes, each with a single interval
    /// and all predicate flags false.
    pub fn new(n: usize) -> Self {
        ComputationBuilder {
            traces: (0..n).map(|_| ProcessTrace::new()).collect(),
            next_msg: 0,
        }
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.traces.len()
    }

    /// Appends a send event on `from` addressed to `to`, returning the
    /// message identifier to pass to [`receive`](Self::receive).
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range (an out-of-range `to` or
    /// `from == to` is reported by [`build`](Self::build) instead, so the
    /// error paths of [`Computation::validate`] stay reachable in tests).
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> MsgId {
        let msg = MsgId::new(self.next_msg);
        self.next_msg += 1;
        let trace = &mut self.traces[from.index()];
        trace.events.push(Event::Send { to, msg });
        trace.pred.push(false);
        msg
    }

    /// Appends a receive event on `at` consuming message `msg`.
    ///
    /// The originating process is looked up from the recorded send; if the
    /// message has not been sent yet (or was addressed elsewhere), the
    /// problem is reported by [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range.
    pub fn receive(&mut self, at: ProcessId, msg: MsgId) {
        let from = self
            .traces
            .iter()
            .enumerate()
            .find_map(|(i, t)| {
                t.events.iter().find_map(|e| match *e {
                    Event::Send { msg: m, .. } if m == msg => Some(ProcessId::new(i as u32)),
                    _ => None,
                })
            })
            .unwrap_or_default();
        let trace = &mut self.traces[at.index()];
        trace.events.push(Event::Receive { from, msg });
        trace.pred.push(false);
    }

    /// Marks the local predicate true in the *current* (latest) interval of
    /// process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn mark_true(&mut self, p: ProcessId) {
        let trace = &mut self.traces[p.index()];
        *trace
            .pred
            .last_mut()
            .expect("trace has at least one interval") = true;
    }

    /// Sets the predicate flag of a specific 1-based interval of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `interval` is out of range, or `interval` is `0`.
    pub fn set_pred(&mut self, p: ProcessId, interval: u64, value: bool) {
        assert!(interval >= 1, "interval indices are 1-based");
        self.traces[p.index()].pred[(interval - 1) as usize] = value;
    }

    /// Current (latest) 1-based interval index of process `p`.
    pub fn current_interval(&self, p: ProcessId) -> u64 {
        self.traces[p.index()].interval_count() as u64
    }

    /// Finishes the computation, validating it.
    ///
    /// # Errors
    ///
    /// Returns any [`ComputationError`] a hand-scripted sequence can produce
    /// (e.g. receiving a never-sent message, or a send/receive cycle).
    pub fn build(self) -> Result<Computation, ComputationError> {
        let c = Computation::from_traces(self.traces);
        c.validate()?;
        Ok(c)
    }

    /// Finishes the computation without validating (for tests that need to
    /// construct malformed traces).
    pub fn build_unchecked(self) -> Computation {
        Computation::from_traces(self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn msg_ids_are_sequential() {
        let mut b = ComputationBuilder::new(3);
        assert_eq!(b.send(p(0), p(1)), MsgId::new(0));
        assert_eq!(b.send(p(1), p(2)), MsgId::new(1));
        assert_eq!(b.process_count(), 3);
    }

    #[test]
    fn receive_resolves_sender() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        let c = b.build().unwrap();
        assert_eq!(
            c.process(p(1)).events[0],
            Event::Receive { from: p(0), msg: m }
        );
    }

    #[test]
    fn mark_true_applies_to_current_interval() {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0)); // interval 1
        let m = b.send(p(0), p(1)); // interval 2 begins on P0
        b.mark_true(p(0)); // interval 2
        b.receive(p(1), m);
        let c = b.build().unwrap();
        assert!(c.process(p(0)).pred_at(1));
        assert!(c.process(p(0)).pred_at(2));
        assert!(!c.process(p(1)).pred_at(1));
    }

    #[test]
    fn set_pred_and_current_interval() {
        let mut b = ComputationBuilder::new(1);
        assert_eq!(b.current_interval(p(0)), 1);
        b.set_pred(p(0), 1, true);
        let c = b.build().unwrap();
        assert!(c.process(p(0)).pred_at(1));
    }

    #[test]
    fn building_cycle_fails() {
        // Receive recorded before its send exists resolves `from` to default
        // and fails validation.
        let mut b = ComputationBuilder::new(2);
        b.receive(p(1), MsgId::new(40));
        assert!(b.build().is_err());
    }
}

//! Cooper–Marzullo global-state lattice exploration.
//!
//! Cooper and Marzullo's detector (the paper's reference \[3\]) enumerates the
//! lattice of consistent global states and tests the predicate on each. The
//! lattice can be exponential in the number of processes — that cost is the
//! paper's motivation for specialized conjunctive-predicate algorithms — so
//! in this repository it serves two purposes:
//!
//! 1. an **independent ground truth** for the test suite (it never looks at
//!    a vector clock, so it cannot share bugs with the clock-based
//!    algorithms), and
//! 2. the **baseline** whose state-count blow-up the experiment harness
//!    contrasts with the token algorithms' `O(n²m)` work.
//!
//! # Example
//!
//! ```rust
//! use wcp_clocks::ProcessId;
//! use wcp_trace::lattice::LatticeExplorer;
//! use wcp_trace::{ComputationBuilder, Wcp};
//!
//! let mut b = ComputationBuilder::new(2);
//! let m = b.send(ProcessId::new(0), ProcessId::new(1));
//! b.mark_true(ProcessId::new(0));
//! b.receive(ProcessId::new(1), m);
//! b.mark_true(ProcessId::new(1));
//! let c = b.build()?;
//! let explorer = LatticeExplorer::new(&c);
//! let first = explorer
//!     .first_satisfying(&Wcp::over_all(&c), 10_000)
//!     .expect("small lattice")
//!     .expect("cut exists");
//! assert_eq!(first.as_slice(), &[2, 2]);
//! # Ok::<(), wcp_trace::ComputationError>(())
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use wcp_clocks::{ClockArena, Cut, ProcessId};

use crate::computation::Computation;
use crate::event::{Event, MsgId};
use crate::predicate::Wcp;

/// Error returned when lattice exploration exceeds its state budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatticeTruncated {
    /// The budget that was exceeded.
    pub max_states: usize,
}

impl fmt::Display for LatticeTruncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "global-state lattice exceeds the exploration budget of {} states",
            self.max_states
        )
    }
}

impl std::error::Error for LatticeTruncated {}

/// Breadth-first explorer of a computation's consistent global states.
#[derive(Debug, Clone)]
pub struct LatticeExplorer<'a> {
    computation: &'a Computation,
    /// `msg → (sender, 1-based send event index)`.
    send_index: HashMap<MsgId, (ProcessId, u64)>,
}

impl<'a> LatticeExplorer<'a> {
    /// Prepares exploration of `computation` (which must be valid).
    pub fn new(computation: &'a Computation) -> Self {
        let mut send_index = HashMap::new();
        for (p, trace) in computation.iter() {
            for (e, ev) in trace.events.iter().enumerate() {
                if let Event::Send { msg, .. } = *ev {
                    send_index.insert(msg, (p, e as u64 + 1));
                }
            }
        }
        LatticeExplorer {
            computation,
            send_index,
        }
    }

    /// The bottom of the lattice: every process in interval 1.
    pub fn initial_cut(&self) -> Cut {
        Cut::from_indices(vec![1; self.computation.process_count()])
    }

    /// Whether process `p` can advance from `cut[p]` to `cut[p] + 1` in
    /// global state `cut` (its next event is a send, or a receive whose
    /// message has already been sent below the cut).
    pub fn can_advance(&self, cut: &Cut, p: ProcessId) -> bool {
        let trace = self.computation.process(p);
        let k = cut[p]; // executing 1-based event k
        if k as usize > trace.events.len() {
            return false;
        }
        match trace.events[(k - 1) as usize] {
            Event::Send { .. } => true,
            Event::Receive { msg, .. } => {
                let (sender, send_idx) = self.send_index[&msg];
                // Sender must have executed its send event: interval > send_idx.
                cut[sender] > send_idx
            }
        }
    }

    /// All global states reachable from `cut` by one event.
    pub fn successors(&self, cut: &Cut) -> Vec<Cut> {
        ProcessId::all(self.computation.process_count())
            .filter(|&p| self.can_advance(cut, p))
            .map(|p| {
                let mut next = cut.clone();
                next.set(p, cut[p] + 1);
                next
            })
            .collect()
    }

    /// Consistency of a complete cut by the *message-closure* rule: no
    /// message is received at or below the cut but sent above it. For
    /// complete cuts this is equivalent to pairwise concurrency (checked
    /// against the vector-clock definition in the property-test suite).
    pub fn is_consistent_cut(&self, cut: &Cut) -> bool {
        if !cut.is_complete() {
            return false;
        }
        for (p, trace) in self.computation.iter() {
            let k = match cut.get(p) {
                Some(k) => k,
                None => return false,
            };
            if (k - 1) as usize > trace.events.len() {
                return false;
            }
            // Events 1..k-1 are below the cut.
            for ev in &trace.events[..(k - 1) as usize] {
                if let Event::Receive { msg, .. } = ev {
                    let (sender, send_idx) = self.send_index[msg];
                    if cut.get(sender).is_none_or(|ks| ks <= send_idx) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Number of consistent global states, or an error if it exceeds
    /// `max_states`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeTruncated`] when the lattice has more than
    /// `max_states` states.
    pub fn count_states(&self, max_states: usize) -> Result<usize, LatticeTruncated> {
        let mut count = 0usize;
        self.bfs(max_states, |_| {
            count += 1;
            false
        })?;
        Ok(count)
    }

    /// The first (minimum) consistent cut satisfying `wcp`, in
    /// breadth-first (level) order. Conjunctive predicates are linear, so
    /// the first satisfying state found at the lowest level is the unique
    /// minimum.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeTruncated`] when more than `max_states` states are
    /// visited before an answer is known.
    pub fn first_satisfying(
        &self,
        wcp: &Wcp,
        max_states: usize,
    ) -> Result<Option<Cut>, LatticeTruncated> {
        self.first_satisfying_counted(wcp, max_states)
            .map(|(cut, _)| cut)
    }

    /// The first consistent cut satisfying an arbitrary predicate
    /// `satisfies`, in level order, with the same state budget.
    ///
    /// Generalizes [`first_satisfying`](Self::first_satisfying) to
    /// predicates beyond plain conjunctions — e.g. generalized conjunctive
    /// predicates with channel terms (`wcp-detect::gcp`). **Minimality
    /// caveat:** for a non-linear predicate the first *level-order* hit is
    /// a minimal-weight satisfying cut, but not necessarily a unique
    /// minimum.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeTruncated`] when more than `max_states` states are
    /// visited before an answer is known.
    pub fn first_satisfying_where<F: FnMut(&Cut) -> bool>(
        &self,
        mut satisfies: F,
        max_states: usize,
    ) -> Result<Option<Cut>, LatticeTruncated> {
        let mut found = None;
        self.bfs(max_states, |cut| {
            if satisfies(cut) {
                found = Some(cut.clone());
                true
            } else {
                false
            }
        })?;
        Ok(found)
    }

    /// Like [`first_satisfying`](Self::first_satisfying), additionally
    /// returning the number of global states visited to reach the answer —
    /// the search cost a Cooper–Marzullo detector pays.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeTruncated`] when more than `max_states` states are
    /// visited before an answer is known.
    pub fn first_satisfying_counted(
        &self,
        wcp: &Wcp,
        max_states: usize,
    ) -> Result<(Option<Cut>, usize), LatticeTruncated> {
        let mut found = None;
        let mut visited = 0usize;
        self.bfs(max_states, |cut| {
            visited += 1;
            if wcp.holds_on(self.computation, cut) {
                found = Some(cut.clone());
                true
            } else {
                false
            }
        })?;
        Ok((found, visited))
    }

    /// All consistent cuts satisfying `wcp` (for meet-closure tests on
    /// small lattices).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeTruncated`] when the lattice exceeds `max_states`.
    pub fn all_satisfying(
        &self,
        wcp: &Wcp,
        max_states: usize,
    ) -> Result<Vec<Cut>, LatticeTruncated> {
        let mut out = Vec::new();
        self.bfs(max_states, |cut| {
            if wcp.holds_on(self.computation, cut) {
                out.push(cut.clone());
            }
            false
        })?;
        Ok(out)
    }

    /// Level-order traversal of the lattice, invoking `visit` on each state;
    /// stops early if `visit` returns `true`.
    ///
    /// The frontier is arena-backed: pending cuts live in one flat
    /// [`ClockArena`] and the queue holds row ids, so expanding a state
    /// allocates only the dedup key (the `seen` set needs owned keys)
    /// instead of a [`Cut`] per enqueued successor plus a key.
    fn bfs<F: FnMut(&Cut) -> bool>(
        &self,
        max_states: usize,
        mut visit: F,
    ) -> Result<(), LatticeTruncated> {
        let n = self.computation.process_count();
        let start = self.initial_cut();
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut arena = ClockArena::new(n);
        let mut queue: VecDeque<usize> = VecDeque::new();
        seen.insert(start.as_slice().to_vec());
        queue.push_back(arena.push(start.as_slice()));
        // Scratch cut, re-filled from the current row before each visit.
        let mut cut = start;
        while let Some(id) = queue.pop_front() {
            for (i, &v) in arena.row(id).as_slice().iter().enumerate() {
                cut.set(ProcessId::new(i as u32), v);
            }
            if visit(&cut) {
                return Ok(());
            }
            for p in ProcessId::all(n) {
                if !self.can_advance(&cut, p) {
                    continue;
                }
                let mut key = arena.row(id).as_slice().to_vec();
                key[p.index()] += 1;
                if !seen.contains(&key) {
                    if seen.len() >= max_states {
                        return Err(LatticeTruncated { max_states });
                    }
                    queue.push_back(arena.push(&key));
                    seen.insert(key);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Two independent processes with E events each have (E+1)^2 states.
    #[test]
    fn independent_processes_have_product_lattice() {
        let mut b = ComputationBuilder::new(2);
        // Give each process 2 events by unreceived cross-sends.
        b.send(p(0), p(1));
        b.send(p(0), p(1));
        b.send(p(1), p(0));
        b.send(p(1), p(0));
        let c = b.build_unchecked();
        assert!(c.validate().is_ok());
        let ex = LatticeExplorer::new(&c);
        assert_eq!(ex.count_states(100).unwrap(), 9);
    }

    /// A message removes the states where the receive precedes the send.
    #[test]
    fn message_prunes_lattice() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        let c = b.build().unwrap();
        let ex = LatticeExplorer::new(&c);
        // States: (1,1) (2,1) (2,2) — (1,2) is inconsistent.
        assert_eq!(ex.count_states(100).unwrap(), 3);
        assert!(!ex.is_consistent_cut(&Cut::from_indices(vec![1, 2])));
        assert!(ex.is_consistent_cut(&Cut::from_indices(vec![2, 2])));
    }

    #[test]
    fn truncation_reports_budget() {
        let mut b = ComputationBuilder::new(2);
        b.send(p(0), p(1));
        b.send(p(1), p(0));
        let c = b.build().unwrap();
        let ex = LatticeExplorer::new(&c);
        assert_eq!(ex.count_states(2), Err(LatticeTruncated { max_states: 2 }));
        let msg = LatticeTruncated { max_states: 2 }.to_string();
        assert!(msg.contains("budget of 2"));
    }

    #[test]
    fn first_satisfying_matches_annotate() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.mark_true(p(0)); // (0,2)
        b.receive(p(1), m);
        b.mark_true(p(1)); // (1,2)
        let c = b.build().unwrap();
        let wcp = Wcp::over_all(&c);
        let ex = LatticeExplorer::new(&c);
        let via_lattice = ex.first_satisfying(&wcp, 1000).unwrap();
        let via_clocks = c.annotate().first_satisfying_full_cut(&wcp);
        assert_eq!(via_lattice, via_clocks);
        assert_eq!(via_lattice.unwrap().as_slice(), &[2, 2]);
    }

    #[test]
    fn no_satisfying_cut_when_predicates_conflict() {
        // Predicate true only at (0,1) and (1,2), but (0,1) → (1,2).
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        b.mark_true(p(1));
        let c = b.build().unwrap();
        let ex = LatticeExplorer::new(&c);
        assert_eq!(ex.first_satisfying(&Wcp::over_all(&c), 1000), Ok(None));
    }

    #[test]
    fn satisfying_cuts_are_meet_closed() {
        // Predicate always true: every consistent cut satisfies, and the
        // set must be closed under meet.
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        b.send(p(1), p(0)); // unreceived
        let mut c = b.build_unchecked();
        assert!(c.validate().is_ok());
        for t in 0..2 {
            let n = c.process(p(t)).pred.len();
            let traces = vec![true; n];
            // rebuild with all-true predicates
            let mut all = c.traces().to_vec();
            all[t as usize].pred = traces;
            c = Computation::from_traces(all);
        }
        let wcp = Wcp::over_all(&c);
        let ex = LatticeExplorer::new(&c);
        let sats = ex.all_satisfying(&wcp, 10_000).unwrap();
        for a in &sats {
            for b in &sats {
                let m = a.meet(b);
                assert!(ex.is_consistent_cut(&m), "meet {m} not consistent");
                assert!(wcp.holds_on(&c, &m));
            }
        }
    }

    #[test]
    fn successors_respect_message_order() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        let c = b.build().unwrap();
        let ex = LatticeExplorer::new(&c);
        let init = ex.initial_cut();
        // From ⟨1,1⟩ only P0 can advance (P1's receive is blocked).
        assert_eq!(ex.successors(&init), vec![Cut::from_indices(vec![2, 1])]);
        assert!(!ex.can_advance(&init, p(1)));
    }
}

//! The computation model and its structural validation.

use std::collections::HashMap;
use std::fmt;

use wcp_clocks::{Cut, ProcessId, StateId};
use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

use crate::annotate::AnnotatedComputation;
use crate::event::{Event, MsgId};
use crate::stats::ComputationStats;

/// The recorded execution of one process: its communication events and the
/// predicate flag for each interval between them.
///
/// A process with `E` events has `E + 1` intervals, numbered `1ꓸꓸE+1`
/// (interval `k` precedes event `k`; interval `E + 1` follows the last
/// event). `pred[k - 1]` records whether the local predicate was true at
/// some point during interval `k`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessTrace {
    /// Communication events, in program order.
    pub events: Vec<Event>,
    /// Per-interval predicate flags; `pred.len() == events.len() + 1`.
    pub pred: Vec<bool>,
}

impl ProcessTrace {
    /// Creates an event-free trace (one interval) with the predicate false.
    pub fn new() -> Self {
        ProcessTrace {
            events: Vec::new(),
            pred: vec![false],
        }
    }

    /// Number of communication events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of intervals (`events + 1`).
    pub fn interval_count(&self) -> usize {
        self.events.len() + 1
    }

    /// Predicate flag for 1-based interval `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is `0` or exceeds [`interval_count`](Self::interval_count).
    pub fn pred_at(&self, k: u64) -> bool {
        assert!(k >= 1, "interval indices are 1-based");
        self.pred[(k - 1) as usize]
    }
}

impl ToJson for ProcessTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "events",
                Json::Arr(self.events.iter().map(Event::to_json).collect()),
            ),
            (
                "pred",
                Json::Arr(self.pred.iter().map(|&b| Json::Bool(b)).collect()),
            ),
        ])
    }
}

impl FromJson for ProcessTrace {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let events = value
            .field("events")?
            .expect_array()?
            .iter()
            .map(Event::from_json)
            .collect::<Result<Vec<Event>, JsonError>>()?;
        let pred = value
            .field("pred")?
            .expect_array()?
            .iter()
            .map(|v| {
                v.as_bool()
                    .ok_or_else(|| JsonError::shape(format!("expected bool, got {v}")))
            })
            .collect::<Result<Vec<bool>, JsonError>>()?;
        Ok(ProcessTrace { events, pred })
    }
}

/// A single run of a distributed program: one [`ProcessTrace`] per process.
///
/// Construct with [`ComputationBuilder`](crate::ComputationBuilder), the
/// generators in [`generate`](crate::generate), or deserialize from JSON;
/// then call [`validate`](Self::validate) (builders and generators always
/// emit valid computations — validation exists for hand-made and
/// deserialized data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Computation {
    processes: Vec<ProcessTrace>,
}

impl ToJson for Computation {
    fn to_json(&self) -> Json {
        Json::obj([(
            "processes",
            Json::Arr(self.processes.iter().map(ProcessTrace::to_json).collect()),
        )])
    }
}

impl FromJson for Computation {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let processes = value
            .field("processes")?
            .expect_array()?
            .iter()
            .map(ProcessTrace::from_json)
            .collect::<Result<Vec<ProcessTrace>, JsonError>>()?;
        Ok(Computation { processes })
    }
}

/// Ways a hand-built or deserialized [`Computation`] can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComputationError {
    /// A process's `pred` vector does not have `events + 1` entries.
    PredLengthMismatch {
        /// Offending process.
        process: ProcessId,
        /// Number of events recorded.
        events: usize,
        /// Number of predicate flags recorded.
        pred_len: usize,
    },
    /// A send or receive names a process outside the computation.
    PeerOutOfRange {
        /// Process whose trace contains the event.
        process: ProcessId,
        /// The out-of-range peer.
        peer: ProcessId,
    },
    /// A process sends a message to itself.
    SelfMessage {
        /// Offending process.
        process: ProcessId,
        /// Offending message.
        msg: MsgId,
    },
    /// Two sends carry the same message identifier.
    DuplicateSend(MsgId),
    /// Two receives consume the same message identifier.
    DuplicateReceive(MsgId),
    /// A receive references a message no process sends.
    ReceiveWithoutSend(MsgId),
    /// A receive's `from` or location disagrees with the matching send.
    MismatchedEndpoints {
        /// Offending message.
        msg: MsgId,
        /// What the send declared: `(sender, destination)`.
        send: (ProcessId, ProcessId),
        /// What the receive declared: `(claimed sender, receiver)`.
        receive: (ProcessId, ProcessId),
    },
    /// The event sequences admit no valid interleaving (a message is
    /// received "before" it could have been sent).
    CausalCycle {
        /// Per-process count of events that could not be scheduled.
        stuck_events: usize,
    },
}

impl fmt::Display for ComputationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputationError::PredLengthMismatch {
                process,
                events,
                pred_len,
            } => write!(
                f,
                "process {process} has {events} events but {pred_len} predicate flags (want events + 1)"
            ),
            ComputationError::PeerOutOfRange { process, peer } => {
                write!(f, "event on {process} names out-of-range peer {peer}")
            }
            ComputationError::SelfMessage { process, msg } => {
                write!(f, "process {process} sends message {msg} to itself")
            }
            ComputationError::DuplicateSend(m) => write!(f, "message {m} is sent twice"),
            ComputationError::DuplicateReceive(m) => write!(f, "message {m} is received twice"),
            ComputationError::ReceiveWithoutSend(m) => {
                write!(f, "message {m} is received but never sent")
            }
            ComputationError::MismatchedEndpoints { msg, send, receive } => write!(
                f,
                "message {msg} endpoints disagree: sent {}→{} but received {}→{}",
                send.0, send.1, receive.0, receive.1
            ),
            ComputationError::CausalCycle { stuck_events } => write!(
                f,
                "event sequences admit no valid interleaving ({stuck_events} events unschedulable)"
            ),
        }
    }
}

impl std::error::Error for ComputationError {}

impl Computation {
    /// Creates a computation from per-process traces.
    ///
    /// The result is not checked; call [`validate`](Self::validate) if the
    /// traces come from an untrusted source.
    pub fn from_traces(processes: Vec<ProcessTrace>) -> Self {
        Computation { processes }
    }

    /// Number of processes (`N` in the paper).
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The trace of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn process(&self, p: ProcessId) -> &ProcessTrace {
        &self.processes[p.index()]
    }

    /// Iterates over `(ProcessId, &ProcessTrace)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &ProcessTrace)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, t)| (ProcessId::new(i as u32), t))
    }

    /// Read-only view of all process traces.
    pub fn traces(&self) -> &[ProcessTrace] {
        &self.processes
    }

    /// The paper's `m`: the maximum number of messages sent or received by
    /// any single process.
    pub fn max_events_per_process(&self) -> usize {
        self.processes
            .iter()
            .map(|t| t.event_count())
            .max()
            .unwrap_or(0)
    }

    /// Total number of communication events across all processes.
    pub fn total_events(&self) -> usize {
        self.processes.iter().map(|t| t.event_count()).sum()
    }

    /// Total number of messages (sends) in the computation.
    pub fn total_messages(&self) -> usize {
        self.processes
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.is_send())
            .count()
    }

    /// Predicate flag of local state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` names a process or interval out of range, or has
    /// index `0`.
    pub fn pred_at(&self, s: StateId) -> bool {
        self.process(s.process).pred_at(s.index)
    }

    /// Computes per-interval clocks and dependences for this computation.
    ///
    /// This is the entry point for all happened-before queries; see
    /// [`AnnotatedComputation`].
    pub fn annotate(&self) -> AnnotatedComputation<'_> {
        AnnotatedComputation::new(self)
    }

    /// Summary statistics (event counts, message counts, predicate density).
    pub fn stats(&self) -> ComputationStats {
        ComputationStats::of(self)
    }

    /// Slices the computation to the prefix at or below `cut`: process `i`
    /// keeps its first `cut[i]` intervals (events `1 ..= cut[i]−1`).
    ///
    /// If `cut` is a **consistent** cut, the prefix is a valid computation
    /// (no received message can cross a consistent cut backwards) that
    /// still contains every state of the cut — the standard way to shrink
    /// a trace to a detected violation for debugging.
    ///
    /// # Panics
    ///
    /// Panics if the cut is incomplete or out of range for this
    /// computation.
    pub fn truncate_at(&self, cut: &Cut) -> Computation {
        assert_eq!(cut.len(), self.process_count(), "cut width mismatch");
        let traces = self
            .iter()
            .map(|(p, trace)| {
                let k = cut.get(p).expect("cut covers every process");
                assert!(
                    k >= 1 && (k as usize) <= trace.interval_count(),
                    "cut entry {k} out of range for {p}"
                );
                ProcessTrace {
                    events: trace.events[..(k - 1) as usize].to_vec(),
                    pred: trace.pred[..k as usize].to_vec(),
                }
            })
            .collect();
        Computation::from_traces(traces)
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: predicate-flag length mismatches,
    /// out-of-range or self-directed messages, duplicate or orphaned message
    /// identifiers, endpoint mismatches between a send and its receive, or
    /// event sequences that admit no valid interleaving.
    pub fn validate(&self) -> Result<(), ComputationError> {
        let n = self.processes.len();

        // Per-process shape and peer ranges.
        for (p, trace) in self.iter() {
            if trace.pred.len() != trace.events.len() + 1 {
                return Err(ComputationError::PredLengthMismatch {
                    process: p,
                    events: trace.events.len(),
                    pred_len: trace.pred.len(),
                });
            }
            for ev in &trace.events {
                let peer = ev.peer();
                if peer.index() >= n {
                    return Err(ComputationError::PeerOutOfRange { process: p, peer });
                }
                if let Event::Send { to, msg } = *ev {
                    if to == p {
                        return Err(ComputationError::SelfMessage { process: p, msg });
                    }
                }
            }
        }

        // Message matching.
        let mut sends: HashMap<MsgId, (ProcessId, ProcessId)> = HashMap::new();
        let mut receives: HashMap<MsgId, (ProcessId, ProcessId)> = HashMap::new();
        for (p, trace) in self.iter() {
            for ev in &trace.events {
                match *ev {
                    Event::Send { to, msg } => {
                        if sends.insert(msg, (p, to)).is_some() {
                            return Err(ComputationError::DuplicateSend(msg));
                        }
                    }
                    Event::Receive { from, msg } => {
                        if receives.insert(msg, (from, p)).is_some() {
                            return Err(ComputationError::DuplicateReceive(msg));
                        }
                    }
                }
            }
        }
        for (&msg, &(claimed_from, receiver)) in &receives {
            match sends.get(&msg) {
                None => return Err(ComputationError::ReceiveWithoutSend(msg)),
                Some(&(sender, dest)) => {
                    if sender != claimed_from || dest != receiver {
                        return Err(ComputationError::MismatchedEndpoints {
                            msg,
                            send: (sender, dest),
                            receive: (claimed_from, receiver),
                        });
                    }
                }
            }
        }

        // Realizability: greedy replay. Sends are always enabled; a receive
        // is enabled once its message has been sent. Since enabling is
        // monotone, the greedy schedule succeeds iff some schedule does.
        let mut next = vec![0usize; n];
        let mut sent: std::collections::HashSet<MsgId> = std::collections::HashSet::new();
        let total = self.total_events();
        let mut done = 0usize;
        loop {
            let mut progressed = false;
            for (i, trace) in self.processes.iter().enumerate() {
                while next[i] < trace.events.len() {
                    match trace.events[next[i]] {
                        Event::Send { msg, .. } => {
                            sent.insert(msg);
                        }
                        Event::Receive { msg, .. } => {
                            if !sent.contains(&msg) {
                                break;
                            }
                        }
                    }
                    next[i] += 1;
                    done += 1;
                    progressed = true;
                }
            }
            if done == total {
                return Ok(());
            }
            if !progressed {
                return Err(ComputationError::CausalCycle {
                    stuck_events: total - done,
                });
            }
        }
    }
}

impl fmt::Display for Computation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "computation over {} processes:", self.processes.len())?;
        for (p, trace) in self.iter() {
            write!(f, "  {p}:")?;
            for (k, ev) in trace.events.iter().enumerate() {
                let flag = if trace.pred[k] { "*" } else { "" };
                write!(f, " [{}{flag}] {ev}", k + 1)?;
            }
            let last = trace.pred.len();
            let flag = if trace.pred[last - 1] { "*" } else { "" };
            writeln!(f, " [{last}{flag}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_trace_has_one_interval() {
        let t = ProcessTrace::new();
        assert_eq!(t.interval_count(), 1);
        assert!(!t.pred_at(1));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn pred_at_zero_panics() {
        ProcessTrace::new().pred_at(0);
    }

    #[test]
    fn valid_two_process_exchange() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        let c = b.build().unwrap();
        assert_eq!(c.process_count(), 2);
        assert_eq!(c.total_messages(), 1);
        assert_eq!(c.total_events(), 2);
        assert_eq!(c.max_events_per_process(), 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn detects_pred_length_mismatch() {
        let mut t = ProcessTrace::new();
        t.pred.clear(); // now 0 flags for 0 events (want 1)
        let c = Computation::from_traces(vec![t]);
        assert!(matches!(
            c.validate(),
            Err(ComputationError::PredLengthMismatch { .. })
        ));
    }

    #[test]
    fn detects_peer_out_of_range() {
        let mut t = ProcessTrace::new();
        t.events.push(Event::Send {
            to: p(5),
            msg: MsgId::new(0),
        });
        t.pred.push(false);
        let c = Computation::from_traces(vec![t]);
        assert!(matches!(
            c.validate(),
            Err(ComputationError::PeerOutOfRange { .. })
        ));
    }

    #[test]
    fn detects_self_message() {
        let mut t = ProcessTrace::new();
        t.events.push(Event::Send {
            to: p(0),
            msg: MsgId::new(0),
        });
        t.pred.push(false);
        let c = Computation::from_traces(vec![t]);
        assert!(matches!(
            c.validate(),
            Err(ComputationError::SelfMessage { .. })
        ));
    }

    #[test]
    fn detects_duplicate_send() {
        let mk = |to| Event::Send {
            to,
            msg: MsgId::new(0),
        };
        let mut t0 = ProcessTrace::new();
        t0.events.extend([mk(p(1)), mk(p(1))]);
        t0.pred.extend([false, false]);
        let c = Computation::from_traces(vec![t0, ProcessTrace::new()]);
        assert_eq!(
            c.validate(),
            Err(ComputationError::DuplicateSend(MsgId::new(0)))
        );
    }

    #[test]
    fn detects_receive_without_send() {
        let mut t = ProcessTrace::new();
        t.events.push(Event::Receive {
            from: p(1),
            msg: MsgId::new(9),
        });
        t.pred.push(false);
        let c = Computation::from_traces(vec![t, ProcessTrace::new()]);
        assert_eq!(
            c.validate(),
            Err(ComputationError::ReceiveWithoutSend(MsgId::new(9)))
        );
    }

    #[test]
    fn detects_mismatched_endpoints() {
        let mut t0 = ProcessTrace::new();
        t0.events.push(Event::Send {
            to: p(1),
            msg: MsgId::new(0),
        });
        t0.pred.push(false);
        let mut t2 = ProcessTrace::new();
        // P2 claims to receive m0 although it was addressed to P1.
        t2.events.push(Event::Receive {
            from: p(0),
            msg: MsgId::new(0),
        });
        t2.pred.push(false);
        let c = Computation::from_traces(vec![t0, ProcessTrace::new(), t2]);
        assert!(matches!(
            c.validate(),
            Err(ComputationError::MismatchedEndpoints { .. })
        ));
    }

    #[test]
    fn detects_causal_cycle() {
        // P0: recv(m1) then send(m0);  P1: recv(m0) then send(m1).
        let mut t0 = ProcessTrace::new();
        t0.events.push(Event::Receive {
            from: p(1),
            msg: MsgId::new(1),
        });
        t0.events.push(Event::Send {
            to: p(1),
            msg: MsgId::new(0),
        });
        t0.pred.extend([false, false]);
        let mut t1 = ProcessTrace::new();
        t1.events.push(Event::Receive {
            from: p(0),
            msg: MsgId::new(0),
        });
        t1.events.push(Event::Send {
            to: p(0),
            msg: MsgId::new(1),
        });
        t1.pred.extend([false, false]);
        let c = Computation::from_traces(vec![t0, t1]);
        assert_eq!(
            c.validate(),
            Err(ComputationError::CausalCycle { stuck_events: 4 })
        );
    }

    #[test]
    fn unreceived_messages_are_legal() {
        let mut b = ComputationBuilder::new(2);
        b.send(p(0), p(1)); // never received
        let c = b.build().unwrap();
        assert!(c.validate().is_ok());
    }

    #[test]
    fn display_shows_events_and_flags() {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        let c = b.build().unwrap();
        let s = c.to_string();
        assert!(s.contains("P0"));
        assert!(s.contains("send(m0)→P1"));
        assert!(s.contains("[1*]"));
    }

    #[test]
    fn truncate_at_consistent_cut_preserves_detection() {
        // P0 sends m0 after its true interval; P1 receives and is true.
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.mark_true(p(0)); // (0,2)
        b.receive(p(1), m);
        b.mark_true(p(1)); // (1,2)
        b.send(p(0), p(1)); // extra tail activity, never received
        let c = b.build().unwrap();
        let cut = Cut::from_indices(vec![2, 2]);
        assert!(c.annotate().is_consistent(&cut));
        let sliced = c.truncate_at(&cut);
        assert!(sliced.validate().is_ok());
        assert_eq!(sliced.process(p(0)).event_count(), 1, "tail send dropped");
        assert_eq!(sliced.process(p(1)).event_count(), 1);
        // The detection result is unchanged on the slice.
        let a = sliced.annotate();
        assert_eq!(
            a.first_satisfying_cut(&crate::Wcp::over_first(2)),
            Some(cut)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn truncate_rejects_incomplete_cut() {
        let c = ComputationBuilder::new(2).build().unwrap();
        c.truncate_at(&Cut::from_indices(vec![0, 1]));
    }

    #[test]
    fn json_roundtrip() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        b.mark_true(p(1));
        let c = b.build().unwrap();
        let json = c.to_json().to_string();
        assert!(json.starts_with("{\"processes\":["), "{json}");
        assert!(json.contains("{\"Send\":{\"to\":1,\"msg\":0}}"), "{json}");
        let back = Computation::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, c);
        assert!(back.validate().is_ok());
    }
}

//! Clock annotation and happened-before queries over a computation.

use std::collections::HashMap;

use wcp_clocks::{Cut, Dependence, ProcessId, StateId, VectorClock};

use crate::computation::Computation;
use crate::event::Event;
use crate::predicate::Wcp;

/// A [`Computation`] enriched with per-interval vector clocks and direct
/// dependences.
///
/// Construction replays the computation once (in an arbitrary valid
/// interleaving — all interleavings yield the same clocks) and records, for
/// every interval `(i, k)`:
///
/// - its vector clock `vc_i(k)` over all `N` processes, maintained per the
///   Figure 2 protocol,
/// - the direct dependence recorded when the interval began (i.e. from the
///   receive event that started it), if any — Section 4.1's dependence list
///   is the union of these over the intervals since the last snapshot.
///
/// All happened-before queries, consistency checks, and the reference
/// ("ground truth") first-cut computations live here.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{ProcessId, StateId};
/// use wcp_trace::ComputationBuilder;
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut b = ComputationBuilder::new(2);
/// let m = b.send(p0, p1);
/// b.receive(p1, m);
/// let c = b.build()?;
/// let a = c.annotate();
/// assert!(a.happened_before(StateId::new(p0, 1), StateId::new(p1, 2)));
/// assert!(a.concurrent(StateId::new(p0, 1), StateId::new(p1, 1)));
/// # Ok::<(), wcp_trace::ComputationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnnotatedComputation<'a> {
    computation: &'a Computation,
    /// `clocks[i][k-1]` = vector clock of interval `(i, k)`.
    clocks: Vec<Vec<VectorClock>>,
    /// `deps[i][k-1]` = dependence recorded when interval `(i, k)` began.
    deps: Vec<Vec<Option<Dependence>>>,
    /// Sorted pred-true interval indices per process.
    true_intervals: Vec<Vec<u64>>,
}

impl<'a> AnnotatedComputation<'a> {
    /// Replays `computation` and records clocks and dependences.
    ///
    /// # Panics
    ///
    /// Panics if the computation is invalid (see
    /// [`Computation::validate`]); validate untrusted input first.
    pub fn new(computation: &'a Computation) -> Self {
        computation
            .validate()
            .expect("cannot annotate an invalid computation");
        let n = computation.process_count();

        let mut clocks: Vec<Vec<VectorClock>> = Vec::with_capacity(n);
        let mut deps: Vec<Vec<Option<Dependence>>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut first = VectorClock::new(n);
            first.init_process(ProcessId::new(i as u32));
            clocks.push(vec![first]);
            deps.push(vec![None]);
        }

        // Greedy replay (same schedule as validate, which already proved it
        // completes). `pending` holds the clock attached to each sent,
        // not-yet-received message.
        let mut next = vec![0usize; n];
        let mut pending: HashMap<crate::MsgId, VectorClock> = HashMap::new();
        let total = computation.total_events();
        let mut done = 0usize;
        while done < total {
            let mut progressed = false;
            for (i, trace) in computation.traces().iter().enumerate() {
                while next[i] < trace.events.len() {
                    let cur = clocks[i].last().expect("at least one interval").clone();
                    match trace.events[next[i]] {
                        Event::Send { msg, .. } => {
                            pending.insert(msg, cur.clone());
                            let mut advanced = cur;
                            advanced.tick(ProcessId::new(i as u32));
                            clocks[i].push(advanced);
                            deps[i].push(None);
                        }
                        Event::Receive { from, msg } => {
                            let Some(tag) = pending.get(&msg) else {
                                break; // not yet sent; try another process
                            };
                            let sender_interval = tag[from];
                            let mut advanced = cur.join(tag);
                            advanced.tick(ProcessId::new(i as u32));
                            clocks[i].push(advanced);
                            deps[i].push(Some(Dependence::new(from, sender_interval)));
                        }
                    }
                    next[i] += 1;
                    done += 1;
                    progressed = true;
                }
            }
            assert!(progressed, "validated computation failed to replay");
        }

        let true_intervals = computation
            .traces()
            .iter()
            .map(|t| {
                t.pred
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, &f)| f.then_some(idx as u64 + 1))
                    .collect()
            })
            .collect();

        AnnotatedComputation {
            computation,
            clocks,
            deps,
            true_intervals,
        }
    }

    /// The underlying computation.
    pub fn computation(&self) -> &'a Computation {
        self.computation
    }

    /// Number of processes (`N`).
    pub fn process_count(&self) -> usize {
        self.computation.process_count()
    }

    /// Number of intervals of process `p`.
    pub fn interval_count(&self, p: ProcessId) -> u64 {
        self.clocks[p.index()].len() as u64
    }

    /// Vector clock of state `s` (width `N`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or has index `0`.
    pub fn clock(&self, s: StateId) -> &VectorClock {
        assert!(s.index >= 1, "interval indices are 1-based");
        &self.clocks[s.process.index()][(s.index - 1) as usize]
    }

    /// The direct dependence recorded when interval `s` began (`None` for
    /// first intervals and intervals started by a send).
    pub fn dependence_at(&self, s: StateId) -> Option<Dependence> {
        assert!(s.index >= 1, "interval indices are 1-based");
        self.deps[s.process.index()][(s.index - 1) as usize]
    }

    /// The dependences a Section 4.1 snapshot at state `s` would carry if
    /// the previous snapshot was at interval `since` (exclusive): every
    /// dependence recorded in intervals `since+1 ..= s.index`.
    pub fn dependences_between(&self, p: ProcessId, since: u64, upto: u64) -> Vec<Dependence> {
        (since + 1..=upto)
            .filter_map(|k| self.dependence_at(StateId::new(p, k)))
            .collect()
    }

    /// Lamport's happened-before over intervals: `a → b`.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range or has index `0`.
    pub fn happened_before(&self, a: StateId, b: StateId) -> bool {
        if a.process == b.process {
            return a.index < b.index;
        }
        self.clock(b)[a.process] >= a.index
    }

    /// `a ‖ b`: neither happened before the other.
    pub fn concurrent(&self, a: StateId, b: StateId) -> bool {
        !self.happened_before(a, b) && !self.happened_before(b, a)
    }

    /// Whether a cut is consistent **over the given processes**: complete on
    /// them and pairwise concurrent.
    pub fn is_consistent_over(&self, cut: &Cut, procs: &[ProcessId]) -> bool {
        self.violating_pair_over(cut, procs).is_none()
            && procs.iter().all(|&p| cut.get(p).is_some_and(|k| k >= 1))
    }

    /// Whether a complete full-width cut is consistent.
    pub fn is_consistent(&self, cut: &Cut) -> bool {
        let procs: Vec<ProcessId> = ProcessId::all(self.process_count()).collect();
        self.is_consistent_over(cut, &procs)
    }

    /// Returns a witness `(a, b)` with `a → b` among the cut's states over
    /// `procs`, if any.
    pub fn violating_pair_over(
        &self,
        cut: &Cut,
        procs: &[ProcessId],
    ) -> Option<(StateId, StateId)> {
        for &pa in procs {
            for &pb in procs {
                if pa == pb {
                    continue;
                }
                let (ka, kb) = (cut.get(pa)?, cut.get(pb)?);
                if ka == 0 || kb == 0 {
                    return None;
                }
                let (a, b) = (StateId::new(pa, ka), StateId::new(pb, kb));
                if self.happened_before(a, b) {
                    return Some((a, b));
                }
            }
        }
        None
    }

    /// Sorted pred-true interval indices of process `p`.
    pub fn true_intervals(&self, p: ProcessId) -> &[u64] {
        &self.true_intervals[p.index()]
    }

    /// First pred-true interval of `p` with index `≥ at`, or `None`.
    pub fn first_true_at_or_after(&self, p: ProcessId, at: u64) -> Option<u64> {
        let v = &self.true_intervals[p.index()];
        let pos = v.partition_point(|&k| k < at);
        v.get(pos).copied()
    }

    /// Reference implementation of WCP detection over the predicate's scope
    /// (the semantics of the paper's Section 3 algorithms): returns the
    /// first consistent cut of the *scope* processes in which every local
    /// predicate holds. Non-scope entries of the returned cut are `0`.
    ///
    /// This is the "advancing cut" fixpoint: while some candidate happened
    /// before another candidate, advance the earlier one to its next
    /// pred-true interval. Conjunctive predicates are linear, so the result
    /// is the unique minimum satisfying cut.
    pub fn first_satisfying_cut(&self, wcp: &Wcp) -> Option<Cut> {
        let candidates: Vec<Vec<u64>> = wcp
            .scope()
            .iter()
            .map(|&p| self.true_intervals[p.index()].clone())
            .collect();
        self.advancing_cut(wcp.scope(), &candidates)
    }

    /// Reference implementation of detection over **all** `N` processes (the
    /// semantics of the paper's Section 4 algorithm): non-scope processes
    /// have trivially true predicates and contribute states to the cut.
    ///
    /// The scope projection of this cut equals
    /// [`first_satisfying_cut`](Self::first_satisfying_cut) whenever both
    /// exist.
    pub fn first_satisfying_full_cut(&self, wcp: &Wcp) -> Option<Cut> {
        let procs: Vec<ProcessId> = ProcessId::all(self.process_count()).collect();
        let candidates: Vec<Vec<u64>> = procs
            .iter()
            .map(|&p| {
                if wcp.contains(p) {
                    self.true_intervals[p.index()].clone()
                } else {
                    (1..=self.interval_count(p)).collect()
                }
            })
            .collect();
        self.advancing_cut(&procs, &candidates)
    }

    /// The least consistent full cut that includes every state in `states`
    /// (which must be pairwise concurrent), or `None` if no consistent
    /// extension exists.
    pub fn least_consistent_extension(&self, states: &[StateId]) -> Option<Cut> {
        let procs: Vec<ProcessId> = ProcessId::all(self.process_count()).collect();
        let fixed: HashMap<ProcessId, u64> = states.iter().map(|s| (s.process, s.index)).collect();
        let candidates: Vec<Vec<u64>> = procs
            .iter()
            .map(|&p| match fixed.get(&p) {
                Some(&k) => vec![k],
                None => (1..=self.interval_count(p)).collect(),
            })
            .collect();
        self.advancing_cut(&procs, &candidates)
    }

    /// Advancing-cut fixpoint over `procs`, each with a sorted candidate
    /// list. Eliminates any candidate that happened before another candidate
    /// until the cut is pairwise concurrent or some list is exhausted.
    fn advancing_cut(&self, procs: &[ProcessId], candidates: &[Vec<u64>]) -> Option<Cut> {
        let mut pos = vec![0usize; procs.len()];
        for (i, c) in candidates.iter().enumerate() {
            if c.is_empty() {
                return None;
            }
            debug_assert!(
                c.windows(2).all(|w| w[0] < w[1]),
                "candidates must be sorted"
            );
            let _ = i;
        }
        loop {
            let mut advanced = false;
            for a in 0..procs.len() {
                for b in 0..procs.len() {
                    if a == b {
                        continue;
                    }
                    let sa = StateId::new(procs[a], candidates[a][pos[a]]);
                    let sb = StateId::new(procs[b], candidates[b][pos[b]]);
                    if self.happened_before(sa, sb) {
                        pos[a] += 1;
                        if pos[a] >= candidates[a].len() {
                            return None;
                        }
                        advanced = true;
                    }
                }
            }
            if !advanced {
                let mut cut = Cut::new(self.process_count());
                for (i, &p) in procs.iter().enumerate() {
                    cut.set(p, candidates[i][pos[i]]);
                }
                return Some(cut);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn s(i: u32, k: u64) -> StateId {
        StateId::new(p(i), k)
    }

    /// P0 sends m0 to P1; P1 sends m1 to P2; classic chain.
    fn chain() -> Computation {
        let mut b = ComputationBuilder::new(3);
        let m0 = b.send(p(0), p(1));
        b.receive(p(1), m0);
        let m1 = b.send(p(1), p(2));
        b.receive(p(2), m1);
        b.build().unwrap()
    }

    #[test]
    fn clocks_follow_figure2() {
        let c = chain();
        let a = c.annotate();
        assert_eq!(a.clock(s(0, 1)).as_slice(), &[1, 0, 0]);
        assert_eq!(a.clock(s(0, 2)).as_slice(), &[2, 0, 0]);
        assert_eq!(a.clock(s(1, 1)).as_slice(), &[0, 1, 0]);
        assert_eq!(a.clock(s(1, 2)).as_slice(), &[1, 2, 0]); // merged + ticked
        assert_eq!(a.clock(s(1, 3)).as_slice(), &[1, 3, 0]);
        assert_eq!(a.clock(s(2, 2)).as_slice(), &[1, 2, 2]);
    }

    #[test]
    fn transitive_happened_before() {
        let c = chain();
        let a = c.annotate();
        assert!(a.happened_before(s(0, 1), s(1, 2)));
        assert!(a.happened_before(s(0, 1), s(2, 2))); // transitively
        assert!(!a.happened_before(s(2, 2), s(0, 1)));
        assert!(a.concurrent(s(0, 2), s(1, 1)));
        assert!(a.happened_before(s(1, 1), s(1, 2))); // program order
    }

    #[test]
    fn dependences_recorded_at_receives() {
        let c = chain();
        let a = c.annotate();
        assert_eq!(a.dependence_at(s(1, 1)), None);
        assert_eq!(a.dependence_at(s(1, 2)), Some(Dependence::new(p(0), 1)));
        assert_eq!(a.dependence_at(s(1, 3)), None); // started by a send
        assert_eq!(a.dependence_at(s(2, 2)), Some(Dependence::new(p(1), 2)));
        assert_eq!(
            a.dependences_between(p(1), 0, 3),
            vec![Dependence::new(p(0), 1)]
        );
        assert_eq!(a.dependences_between(p(1), 2, 3), vec![]);
    }

    #[test]
    fn consistency_checks() {
        let c = chain();
        let a = c.annotate();
        // ⟨1,1,1⟩ is the initial cut — consistent.
        assert!(a.is_consistent(&Cut::from_indices(vec![1, 1, 1])));
        // ⟨1,2,1⟩: (0,1) → (1,2) — inconsistent.
        let bad = Cut::from_indices(vec![1, 2, 1]);
        assert!(!a.is_consistent(&bad));
        let (from, to) = a
            .violating_pair_over(&bad, &[p(0), p(1), p(2)])
            .expect("violation exists");
        assert_eq!((from, to), (s(0, 1), s(1, 2)));
        // ⟨2,2,1⟩ consistent.
        assert!(a.is_consistent(&Cut::from_indices(vec![2, 2, 1])));
        // Incomplete cut is not consistent.
        assert!(!a.is_consistent(&Cut::from_indices(vec![0, 1, 1])));
    }

    #[test]
    fn true_interval_queries() {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0)); // interval 1
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        b.mark_true(p(1)); // interval 2
        let c = b.build().unwrap();
        let a = c.annotate();
        assert_eq!(a.true_intervals(p(0)), &[1]);
        assert_eq!(a.true_intervals(p(1)), &[2]);
        assert_eq!(a.first_true_at_or_after(p(0), 1), Some(1));
        assert_eq!(a.first_true_at_or_after(p(0), 2), None);
        assert_eq!(a.first_true_at_or_after(p(1), 1), Some(2));
    }

    #[test]
    fn first_cut_simple_detection() {
        // P0 true in interval 2 (after send), P1 true in interval 2 (after
        // receive): ⟨2,2⟩ is consistent and satisfying.
        let mut b = ComputationBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.mark_true(p(0));
        b.receive(p(1), m);
        b.mark_true(p(1));
        let c = b.build().unwrap();
        let a = c.annotate();
        let wcp = Wcp::over_all(&c);
        assert_eq!(
            a.first_satisfying_cut(&wcp),
            Some(Cut::from_indices(vec![2, 2]))
        );
    }

    #[test]
    fn first_cut_requires_concurrency() {
        // P0 true only in interval 1, P1 true only in interval 2, but
        // (0,1) → (1,2): no satisfying cut.
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        b.mark_true(p(1));
        let c = b.build().unwrap();
        let a = c.annotate();
        assert_eq!(a.first_satisfying_cut(&Wcp::over_all(&c)), None);
    }

    #[test]
    fn first_cut_is_minimal() {
        // Predicate true everywhere: the minimum is ⟨1,1⟩.
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        b.mark_true(p(1));
        let m = b.send(p(0), p(1));
        b.mark_true(p(0));
        b.receive(p(1), m);
        b.mark_true(p(1));
        let c = b.build().unwrap();
        let a = c.annotate();
        assert_eq!(
            a.first_satisfying_cut(&Wcp::over_all(&c)),
            Some(Cut::from_indices(vec![1, 1]))
        );
    }

    #[test]
    fn scoped_detection_ignores_other_processes() {
        // Scope = {P0, P2}; P1 relays causality but has no predicate.
        let mut b = ComputationBuilder::new(3);
        b.mark_true(p(0));
        let m0 = b.send(p(0), p(1));
        b.receive(p(1), m0);
        let m1 = b.send(p(1), p(2));
        b.receive(p(2), m1);
        b.mark_true(p(2)); // interval 2, causally after (0,1)
        let c = b.build().unwrap();
        let a = c.annotate();
        let wcp = Wcp::over([p(0), p(2)]);
        // (0,1) → (2,2) via P1, so no cut with those two states; P0 has no
        // later true interval ⇒ undetected.
        assert_eq!(a.first_satisfying_cut(&wcp), None);
    }

    #[test]
    fn full_cut_agrees_with_scope_cut() {
        let mut b = ComputationBuilder::new(3);
        let m0 = b.send(p(0), p(1));
        b.mark_true(p(0)); // interval 2
        b.receive(p(1), m0);
        b.mark_true(p(2)); // interval 1
        let c = b.build().unwrap();
        let a = c.annotate();
        let wcp = Wcp::over([p(0), p(2)]);
        let scope_cut = a.first_satisfying_cut(&wcp).unwrap();
        let full_cut = a.first_satisfying_full_cut(&wcp).unwrap();
        assert_eq!(wcp.project(&scope_cut), wcp.project(&full_cut));
        assert!(a.is_consistent(&full_cut));
        assert!(full_cut.is_complete());
    }

    #[test]
    fn least_consistent_extension_contains_states() {
        let c = chain();
        let a = c.annotate();
        let chosen = [s(0, 2), s(2, 1)];
        let ext = a.least_consistent_extension(&chosen).unwrap();
        assert_eq!(ext[p(0)], 2);
        assert_eq!(ext[p(2)], 1);
        assert!(a.is_consistent(&ext));
    }

    #[test]
    fn empty_candidates_mean_no_detection() {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let c = b.build().unwrap();
        let a = c.annotate();
        assert_eq!(a.first_satisfying_cut(&Wcp::over_all(&c)), None);
    }
}

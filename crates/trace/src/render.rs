//! Space-time diagrams of computations.
//!
//! Renders a recorded run the way distributed-computing papers draw them
//! (one line per process, events in causal order), as plain text or as
//! Graphviz DOT. A detected cut can be overlaid — the fastest way to *see*
//! why a predicate was (or wasn't) detected.
//!
//! # Example
//!
//! ```rust
//! use wcp_clocks::ProcessId;
//! use wcp_trace::render::{ascii, DiagramOptions};
//! use wcp_trace::ComputationBuilder;
//!
//! let mut b = ComputationBuilder::new(2);
//! b.mark_true(ProcessId::new(0));
//! let m = b.send(ProcessId::new(0), ProcessId::new(1));
//! b.receive(ProcessId::new(1), m);
//! let c = b.build()?;
//! let diagram = ascii(&c, &DiagramOptions::default());
//! assert!(diagram.contains("P0"));
//! assert!(diagram.contains("S0")); // send of message m0
//! assert!(diagram.contains("R0")); // its receive
//! # Ok::<(), wcp_trace::ComputationError>(())
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use wcp_clocks::{Cut, ProcessId};

use crate::computation::Computation;
use crate::event::{Event, MsgId};

/// Rendering options.
#[derive(Debug, Clone, Default)]
pub struct DiagramOptions {
    /// A cut to overlay (drawn as `┊` between the intervals it separates).
    pub cut: Option<Cut>,
    /// Mark predicate-true intervals with `=` instead of `-`.
    pub show_predicates: bool,
}

impl DiagramOptions {
    /// Options with a cut overlay and predicate marking.
    pub fn with_cut(cut: Cut) -> Self {
        DiagramOptions {
            cut: Some(cut),
            show_predicates: true,
        }
    }
}

/// Assigns each event a global column such that program order and message
/// order are respected (a receive is strictly right of its send).
fn layout(computation: &Computation) -> Vec<Vec<usize>> {
    let n = computation.process_count();
    let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut next = vec![0usize; n];
    let mut send_col: HashMap<MsgId, usize> = HashMap::new();
    let total = computation.total_events();
    let mut done = 0usize;
    while done < total {
        let mut progressed = false;
        for (i, trace) in computation.traces().iter().enumerate() {
            while next[i] < trace.events.len() {
                let prev = cols[i].last().copied().unwrap_or(0);
                let col = match trace.events[next[i]] {
                    Event::Send { msg, .. } => {
                        let col = prev + 1;
                        send_col.insert(msg, col);
                        col
                    }
                    Event::Receive { msg, .. } => match send_col.get(&msg) {
                        Some(&s) => prev.max(s) + 1,
                        None => break, // sender not scheduled yet
                    },
                };
                cols[i].push(col);
                next[i] += 1;
                done += 1;
                progressed = true;
            }
        }
        assert!(progressed, "invalid computation cannot be laid out");
    }
    cols
}

/// Renders the computation as a text space-time diagram.
///
/// Each process is one line; `S<k>`/`R<k>` mark the send and receive of
/// message `m<k>`; with [`DiagramOptions::show_predicates`], segments where
/// the local predicate holds are drawn with `=`. A cut renders as `┊`
/// immediately after the last event inside it.
///
/// # Panics
///
/// Panics if the computation is invalid.
pub fn ascii(computation: &Computation, options: &DiagramOptions) -> String {
    let cols = layout(computation);
    let max_col = cols.iter().flatten().copied().max().unwrap_or(0);
    let label_width = computation
        .traces()
        .iter()
        .flat_map(|t| &t.events)
        .map(|e| format!("{}", e.msg().as_u64()).len() + 1)
        .max()
        .unwrap_or(2)
        .max(2);
    let cell = label_width + 2;
    let width = (max_col + 1) * cell + 2;

    let mut out = String::new();
    for (p, trace) in computation.iter() {
        let mut line: Vec<char> = vec![' '; width];
        let event_pos = |e: usize| cols[p.index()][e] * cell;
        // Fill each interval's segment.
        for k in 1..=trace.interval_count() as u64 {
            let start = if k == 1 {
                0
            } else {
                event_pos((k - 2) as usize) + label_width
            };
            let end = if (k as usize) <= trace.events.len() {
                event_pos((k - 1) as usize)
            } else {
                width
            };
            let ch = segment_char(trace, k, options);
            for c in line.iter_mut().take(end).skip(start) {
                *c = ch;
            }
        }
        // Event labels.
        for (e, event) in trace.events.iter().enumerate() {
            let tag = match event {
                Event::Send { msg, .. } => format!("S{}", msg.as_u64()),
                Event::Receive { msg, .. } => format!("R{}", msg.as_u64()),
            };
            for (o, ch) in tag.chars().enumerate() {
                line[event_pos(e) + o] = ch;
            }
        }
        // Cut marker: overwrite the first segment character of interval k.
        if let Some(cut) = &options.cut {
            if let Some(k) = cut.get(p) {
                if k >= 1 && k <= trace.interval_count() as u64 {
                    let pos = if k == 1 {
                        0
                    } else {
                        event_pos((k - 2) as usize) + label_width
                    };
                    line[pos.min(width - 1)] = '┊';
                }
            }
        }
        let _ = write!(out, "{:<4}", p.to_string());
        out.extend(line.iter());
        // Trim trailing spaces/segments of the final run for tidiness.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

fn segment_char(trace: &crate::ProcessTrace, interval: u64, options: &DiagramOptions) -> char {
    if options.show_predicates && trace.pred_at(interval) {
        '='
    } else {
        '-'
    }
}

/// Renders the computation as a Graphviz DOT digraph: one subgraph rank per
/// process, program-order edges, message edges, predicate-true states
/// filled, and (optionally) the cut's states outlined in bold.
///
/// Pipe the output through `dot -Tsvg` to visualize.
pub fn dot(computation: &Computation, options: &DiagramOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph computation {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n");
    // State nodes: one per interval.
    for (p, trace) in computation.iter() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", p.index());
        let _ = writeln!(out, "    label=\"{p}\"; color=lightgrey;");
        for k in 1..=trace.interval_count() as u64 {
            let mut attrs = Vec::new();
            if options.show_predicates && trace.pred_at(k) {
                attrs.push("style=filled, fillcolor=palegreen".to_string());
            }
            if options.cut.as_ref().and_then(|c| c.get(p)) == Some(k) {
                attrs.push("penwidth=3, color=red".to_string());
            }
            let _ = writeln!(
                out,
                "    s_{}_{k} [label=\"{k}\"{}{}];",
                p.index(),
                if attrs.is_empty() { "" } else { ", " },
                attrs.join(", ")
            );
        }
        // Program-order edges.
        for k in 1..trace.interval_count() as u64 {
            let label = match trace.events[(k - 1) as usize] {
                Event::Send { msg, .. } => format!("send m{}", msg.as_u64()),
                Event::Receive { msg, .. } => format!("recv m{}", msg.as_u64()),
            };
            let _ = writeln!(
                out,
                "    s_{0}_{k} -> s_{0}_{next} [label=\"{label}\", fontsize=8];",
                p.index(),
                k = k,
                next = k + 1,
            );
        }
        out.push_str("  }\n");
    }
    // Message edges: send interval → receive interval.
    let mut send_at: HashMap<MsgId, (ProcessId, u64)> = HashMap::new();
    for (p, trace) in computation.iter() {
        for (e, ev) in trace.events.iter().enumerate() {
            if let Event::Send { msg, .. } = *ev {
                send_at.insert(msg, (p, e as u64 + 1));
            }
        }
    }
    for (p, trace) in computation.iter() {
        for (e, ev) in trace.events.iter().enumerate() {
            if let Event::Receive { msg, .. } = *ev {
                let (sp, sk) = send_at[&msg];
                let _ = writeln!(
                    out,
                    "  s_{}_{sk} -> s_{}_{} [style=dashed, color=blue, label=\"m{}\", fontsize=8];",
                    sp.index(),
                    p.index(),
                    e as u64 + 2,
                    msg.as_u64()
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> Computation {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let m = b.send(p(0), p(1));
        b.receive(p(1), m);
        b.mark_true(p(1));
        b.build().unwrap()
    }

    #[test]
    fn ascii_contains_events_and_processes() {
        let s = ascii(&sample(), &DiagramOptions::default());
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
        assert!(s.contains("S0"));
        assert!(s.contains("R0"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn ascii_marks_true_intervals() {
        let opts = DiagramOptions {
            cut: None,
            show_predicates: true,
        };
        let s = ascii(&sample(), &opts);
        assert!(
            s.contains('='),
            "true interval should be drawn with =:\n{s}"
        );
    }

    #[test]
    fn ascii_overlays_cut() {
        let opts = DiagramOptions::with_cut(Cut::from_indices(vec![2, 2]));
        let s = ascii(&sample(), &opts);
        assert_eq!(s.matches('┊').count(), 2, "one marker per process:\n{s}");
    }

    #[test]
    fn receive_is_right_of_send() {
        let cols = layout(&sample());
        assert!(cols[1][0] > cols[0][0], "R0 must be right of S0");
    }

    #[test]
    fn dot_is_well_formed() {
        let opts = DiagramOptions::with_cut(Cut::from_indices(vec![1, 2]));
        let s = dot(&sample(), &opts);
        assert!(s.starts_with("digraph"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("cluster_0"));
        assert!(s.contains("style=dashed"), "message edge present");
        assert!(s.contains("penwidth=3"), "cut highlight present");
        assert!(s.contains("palegreen"), "true state filled");
        // Balanced braces.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_computation_renders() {
        let c = ComputationBuilder::new(1).build().unwrap();
        let s = ascii(&c, &DiagramOptions::default());
        assert!(s.contains("P0"));
        let d = dot(&c, &DiagramOptions::default());
        assert!(d.contains("s_0_1"));
    }
}

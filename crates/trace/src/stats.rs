//! Summary statistics of a computation.

use std::fmt;

use wcp_obs::json::{Json, ToJson};

use crate::computation::Computation;

/// Aggregate statistics of a [`Computation`], used by the experiment harness
/// to describe workloads.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::ProcessId;
/// use wcp_trace::ComputationBuilder;
///
/// let mut b = ComputationBuilder::new(2);
/// let m = b.send(ProcessId::new(0), ProcessId::new(1));
/// b.receive(ProcessId::new(1), m);
/// b.mark_true(ProcessId::new(1));
/// let stats = b.build().unwrap().stats();
/// assert_eq!(stats.processes, 2);
/// assert_eq!(stats.messages, 1);
/// assert_eq!(stats.true_intervals, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputationStats {
    /// Number of processes (`N`).
    pub processes: usize,
    /// Total messages sent.
    pub messages: usize,
    /// Messages sent but never received.
    pub undelivered: usize,
    /// Maximum events on any one process (the paper's `m`).
    pub max_events_per_process: usize,
    /// Total communication events.
    pub total_events: usize,
    /// Total intervals across all processes.
    pub total_intervals: usize,
    /// Intervals whose predicate flag is true.
    pub true_intervals: usize,
    /// Fraction of intervals whose predicate flag is true.
    pub predicate_density: f64,
}

impl ComputationStats {
    /// Computes statistics for `computation`.
    pub fn of(computation: &Computation) -> Self {
        let processes = computation.process_count();
        let messages = computation.total_messages();
        let receives: usize = computation
            .traces()
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.is_receive())
            .count();
        let total_events = computation.total_events();
        let total_intervals: usize = computation
            .traces()
            .iter()
            .map(|t| t.interval_count())
            .sum();
        let true_intervals: usize = computation
            .traces()
            .iter()
            .flat_map(|t| &t.pred)
            .filter(|&&f| f)
            .count();
        ComputationStats {
            processes,
            messages,
            undelivered: messages - receives,
            max_events_per_process: computation.max_events_per_process(),
            total_events,
            total_intervals,
            true_intervals,
            predicate_density: if total_intervals == 0 {
                0.0
            } else {
                true_intervals as f64 / total_intervals as f64
            },
        }
    }
}

impl ToJson for ComputationStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("processes", Json::UInt(self.processes as u64)),
            ("messages", Json::UInt(self.messages as u64)),
            ("undelivered", Json::UInt(self.undelivered as u64)),
            (
                "max_events_per_process",
                Json::UInt(self.max_events_per_process as u64),
            ),
            ("total_events", Json::UInt(self.total_events as u64)),
            ("total_intervals", Json::UInt(self.total_intervals as u64)),
            ("true_intervals", Json::UInt(self.true_intervals as u64)),
            ("predicate_density", Json::Float(self.predicate_density)),
        ])
    }
}

impl fmt::Display for ComputationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} msgs={} (undelivered {}) m={} events={} intervals={} true={} ({:.1}%)",
            self.processes,
            self.messages,
            self.undelivered,
            self.max_events_per_process,
            self.total_events,
            self.total_intervals,
            self.true_intervals,
            self.predicate_density * 100.0
        )
    }
}

#[cfg(test)]
mod tests {

    use crate::ComputationBuilder;
    use wcp_clocks::ProcessId;

    #[test]
    fn counts_undelivered() {
        let mut b = ComputationBuilder::new(2);
        b.send(ProcessId::new(0), ProcessId::new(1));
        let m = b.send(ProcessId::new(0), ProcessId::new(1));
        b.receive(ProcessId::new(1), m);
        let s = b.build().unwrap().stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.undelivered, 1);
        assert_eq!(s.max_events_per_process, 2);
        assert_eq!(s.total_intervals, 5);
    }

    #[test]
    fn density_of_empty_computation_is_zero_free() {
        let s = ComputationBuilder::new(1).build().unwrap().stats();
        assert_eq!(s.true_intervals, 0);
        assert_eq!(s.predicate_density, 0.0);
        assert_eq!(s.total_intervals, 1);
    }

    #[test]
    fn display_is_compact() {
        let s = ComputationBuilder::new(1).build().unwrap().stats();
        assert!(s.to_string().contains("N=1"));
    }
}

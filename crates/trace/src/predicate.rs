//! Weak conjunctive predicates.

use std::fmt;

use wcp_clocks::{Cut, ProcessId};
use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

use crate::computation::Computation;

/// A weak conjunctive predicate: the conjunction `l_{s_1} ∧ … ∧ l_{s_n}` of
/// the local predicates of a subset of processes (the *scope*).
///
/// The paper distinguishes `n` — the number of processes over which the
/// predicate is defined — from `N`, the total number of processes. Processes
/// outside the scope have a trivially true local predicate. The scope is
/// kept sorted and duplicate-free.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::ProcessId;
/// use wcp_trace::Wcp;
///
/// let wcp = Wcp::over([ProcessId::new(2), ProcessId::new(0)]);
/// assert_eq!(wcp.n(), 2);
/// assert_eq!(wcp.scope()[0], ProcessId::new(0)); // sorted
/// assert_eq!(wcp.position(ProcessId::new(2)), Some(1));
/// assert_eq!(wcp.position(ProcessId::new(1)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Wcp {
    scope: Vec<ProcessId>,
}

impl ToJson for Wcp {
    fn to_json(&self) -> Json {
        Json::obj([(
            "scope",
            Json::Arr(self.scope.iter().map(ProcessId::to_json).collect()),
        )])
    }
}

impl FromJson for Wcp {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let scope = value
            .field("scope")?
            .expect_array()?
            .iter()
            .map(ProcessId::from_json)
            .collect::<Result<Vec<ProcessId>, JsonError>>()?;
        Ok(Wcp::over(scope))
    }
}

impl Wcp {
    /// Creates a predicate over the given processes (sorted, deduplicated).
    pub fn over<I: IntoIterator<Item = ProcessId>>(scope: I) -> Self {
        let mut scope: Vec<ProcessId> = scope.into_iter().collect();
        scope.sort_unstable();
        scope.dedup();
        Wcp { scope }
    }

    /// Creates a predicate over every process of `computation` (`n = N`).
    pub fn over_all(computation: &Computation) -> Self {
        Wcp {
            scope: ProcessId::all(computation.process_count()).collect(),
        }
    }

    /// Creates a predicate over the first `n` processes.
    pub fn over_first(n: usize) -> Self {
        Wcp {
            scope: ProcessId::all(n).collect(),
        }
    }

    /// The processes the predicate ranges over, sorted ascending.
    pub fn scope(&self) -> &[ProcessId] {
        &self.scope
    }

    /// The paper's `n`: the number of conjoined local predicates.
    pub fn n(&self) -> usize {
        self.scope.len()
    }

    /// `true` iff `p` is one of the predicate's processes.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.scope.binary_search(&p).is_ok()
    }

    /// Index of `p` within the sorted scope (the paper's `i ∈ 1ꓸꓸn`),
    /// or `None` if `p` is outside the scope.
    pub fn position(&self, p: ProcessId) -> Option<usize> {
        self.scope.binary_search(&p).ok()
    }

    /// Whether the local predicate of `p` holds in its 1-based `interval`:
    /// trivially true for processes outside the scope, otherwise the trace's
    /// recorded flag.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `interval` is out of range for `computation`.
    pub fn holds_locally(&self, computation: &Computation, p: ProcessId, interval: u64) -> bool {
        if !self.contains(p) {
            return true;
        }
        computation.process(p).pred_at(interval)
    }

    /// Whether a complete cut satisfies the conjunction (ignoring
    /// consistency — combine with
    /// [`AnnotatedComputation::is_consistent`](crate::AnnotatedComputation::is_consistent)).
    ///
    /// # Panics
    ///
    /// Panics if the cut does not cover every scope process with a nonzero
    /// interval, or indices are out of range.
    pub fn holds_on(&self, computation: &Computation, cut: &Cut) -> bool {
        self.scope.iter().all(|&p| {
            let k = cut.get(p).expect("cut narrower than predicate scope");
            assert!(k >= 1, "cut has no state for scope process {p}");
            computation.process(p).pred_at(k)
        })
    }

    /// Projects a full-width cut to the scope processes, in scope order.
    pub fn project(&self, cut: &Cut) -> Vec<u64> {
        self.scope
            .iter()
            .map(|&p| cut.get(p).unwrap_or(0))
            .collect()
    }
}

impl fmt::Display for Wcp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⋀{{")?;
        for (i, p) in self.scope.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "l({p})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn scope_is_sorted_and_deduped() {
        let w = Wcp::over([p(3), p(1), p(3), p(0)]);
        assert_eq!(w.scope(), &[p(0), p(1), p(3)]);
        assert_eq!(w.n(), 3);
        assert!(w.contains(p(3)));
        assert!(!w.contains(p(2)));
    }

    #[test]
    fn over_all_and_first() {
        let mut b = ComputationBuilder::new(4);
        b.mark_true(p(0));
        let c = b.build().unwrap();
        assert_eq!(Wcp::over_all(&c).n(), 4);
        assert_eq!(Wcp::over_first(2).scope(), &[p(0), p(1)]);
    }

    #[test]
    fn holds_locally_trivial_outside_scope() {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let c = b.build().unwrap();
        let w = Wcp::over([p(0)]);
        assert!(w.holds_locally(&c, p(0), 1));
        assert!(w.holds_locally(&c, p(1), 1)); // outside scope ⇒ true
    }

    #[test]
    fn holds_on_checks_scope_only() {
        let mut b = ComputationBuilder::new(2);
        b.mark_true(p(0));
        let c = b.build().unwrap();
        let w = Wcp::over([p(0)]);
        let cut = Cut::from_indices(vec![1, 1]);
        assert!(w.holds_on(&c, &cut));
        assert!(!Wcp::over_all(&c).holds_on(&c, &cut));
    }

    #[test]
    fn project_extracts_scope_entries() {
        let w = Wcp::over([p(0), p(2)]);
        let cut = Cut::from_indices(vec![4, 9, 2]);
        assert_eq!(w.project(&cut), vec![4, 2]);
    }

    #[test]
    fn display_lists_scope() {
        assert_eq!(Wcp::over([p(0), p(2)]).to_string(), "⋀{l(P0),l(P2)}");
    }
}

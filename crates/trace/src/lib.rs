//! Distributed-computation traces for conjunctive-predicate detection.
//!
//! A [`Computation`] records a single run of a distributed program as the
//! paper models it (Section 2): `N` processes exchanging asynchronous
//! messages over reliable (not necessarily FIFO) channels. Each process
//! execution is a sequence of *communication intervals* separated by send
//! and receive events; each interval carries a boolean flag recording
//! whether the process's local predicate held during that interval.
//!
//! The crate provides:
//!
//! - [`Computation`] / [`ProcessTrace`] / [`Event`] — the trace model, with
//!   structural validation ([`Computation::validate`]),
//! - [`ComputationBuilder`] — an ergonomic way to script computations by
//!   hand (used heavily in tests and examples),
//! - [`Wcp`] — a weak conjunctive predicate: the subset of processes whose
//!   local predicates are conjoined,
//! - [`AnnotatedComputation`] — per-interval vector clocks, direct
//!   dependences, happened-before queries, and cut-consistency checks,
//! - [`generate`] — seeded random workload generators with plantable
//!   satisfying cuts (the repo's substitute for the paper's example
//!   programs),
//! - [`lattice`] — Cooper–Marzullo enumeration of the global-state lattice,
//!   used as independent ground truth in the test suite.
//!
//! # Example
//!
//! ```rust
//! use wcp_clocks::ProcessId;
//! use wcp_trace::{ComputationBuilder, Wcp};
//!
//! // P0 ---m--> P1 ; predicate true at P0 interval 1, P1 interval 2.
//! let mut b = ComputationBuilder::new(2);
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! b.mark_true(p0);
//! let m = b.send(p0, p1);
//! b.receive(p1, m);
//! b.mark_true(p1);
//! let computation = b.build().expect("valid computation");
//!
//! let wcp = Wcp::over_all(&computation);
//! let annotated = computation.annotate();
//! // (P0,1) happened before (P1,2): the cut ⟨1,2⟩ is NOT consistent...
//! assert!(annotated.first_satisfying_cut(&wcp).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod builder;
pub mod channel;
mod computation;
mod event;
pub mod generate;
pub mod lattice;
mod predicate;
pub mod render;
mod stats;

pub use annotate::AnnotatedComputation;
pub use builder::ComputationBuilder;
pub use channel::{ChannelId, ChannelIndex, MessageSpan};
pub use computation::{Computation, ComputationError, ProcessTrace};
pub use event::{Event, MsgId};
pub use predicate::Wcp;
pub use stats::ComputationStats;

//! Randomized tests of the simulator's delivery guarantees.
//!
//! Deterministic seeded loops over `wcp_obs::rng::Rng` stand in for an
//! external property-testing framework: each property is checked on dozens
//! of random configurations from a fixed seed, so failures reproduce.

use std::sync::{Arc, Mutex};

use wcp_obs::rng::Rng;
use wcp_sim::{Actor, ActorId, Context, LatencyModel, SimConfig, Simulation, StopReason, WireSize};

const CASES: usize = 64;

#[derive(Clone, Debug, PartialEq)]
struct Tagged {
    seq: u64,
    sender: u32,
}

impl WireSize for Tagged {
    fn wire_size(&self) -> usize {
        12
    }
}

/// Sends `count` tagged messages to a sink on start.
struct Source {
    to: ActorId,
    count: u64,
    id: u32,
}

impl Actor<Tagged> for Source {
    fn on_start(&mut self, ctx: &mut dyn Context<Tagged>) {
        for seq in 0..self.count {
            ctx.send(
                self.to,
                Tagged {
                    seq,
                    sender: self.id,
                },
            );
        }
    }
    fn on_message(&mut self, _: &mut dyn Context<Tagged>, _: ActorId, _: Tagged) {}
}

/// Records all deliveries.
struct Sink(Arc<Mutex<Vec<Tagged>>>);

impl Actor<Tagged> for Sink {
    fn on_message(&mut self, _: &mut dyn Context<Tagged>, _: ActorId, msg: Tagged) {
        self.0.lock().unwrap().push(msg);
    }
}

fn run_sources(
    sources: &[u64],
    latency: LatencyModel,
    fifo: bool,
    seed: u64,
) -> (Vec<Tagged>, StopReason) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(
        SimConfig::seeded(seed)
            .with_latency(latency)
            .with_fifo_default(fifo),
    );
    let sink = sim.add_actor(Box::new(Sink(log.clone())));
    for (i, &count) in sources.iter().enumerate() {
        sim.add_actor(Box::new(Source {
            to: sink,
            count,
            id: i as u32,
        }));
    }
    let outcome = sim.run();
    let delivered = log.lock().unwrap().clone();
    (delivered, outcome.reason)
}

fn rand_sources(rng: &mut Rng, min_count: u64, max_count: u64, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| rng.gen_range(min_count..max_count))
        .collect()
}

fn rand_latency(rng: &mut Rng) -> LatencyModel {
    if rng.gen_bool(0.5) {
        LatencyModel::Fixed {
            ticks: rng.gen_range(0u64..5),
        }
    } else {
        LatencyModel::Uniform {
            min: rng.gen_range(1u64..5),
            max: rng.gen_range(5u64..60),
        }
    }
}

/// Reliability: every sent message is delivered exactly once, whatever the
/// latency model or ordering mode.
#[test]
fn every_message_delivered_exactly_once() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..CASES {
        let sources = rand_sources(&mut rng, 0, 30, 4);
        let latency = rand_latency(&mut rng);
        let fifo = rng.gen_bool(0.5);
        let seed = rng.next_u64();
        let total: u64 = sources.iter().sum();
        let (delivered, reason) = run_sources(&sources, latency, fifo, seed);
        assert_eq!(reason, StopReason::QueueDrained);
        assert_eq!(delivered.len() as u64, total, "{sources:?} {latency:?}");
        // Exactly once: each (sender, seq) pair appears once.
        let mut seen: Vec<(u32, u64)> = delivered.iter().map(|t| (t.sender, t.seq)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u64, total);
    }
}

/// FIFO mode preserves per-sender order even under heavy jitter.
#[test]
fn fifo_preserves_per_sender_order() {
    let mut rng = Rng::seed_from_u64(12);
    for _ in 0..CASES {
        let sources = rand_sources(&mut rng, 1, 30, 4);
        let seed = rng.next_u64();
        let (delivered, _) = run_sources(
            &sources,
            LatencyModel::Uniform { min: 1, max: 50 },
            true,
            seed,
        );
        for sender in 0..sources.len() as u32 {
            let seqs: Vec<u64> = delivered
                .iter()
                .filter(|t| t.sender == sender)
                .map(|t| t.seq)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "sender {sender}: {seqs:?}"
            );
        }
    }
}

/// Determinism: identical configurations produce identical delivery
/// sequences.
#[test]
fn determinism() {
    let mut rng = Rng::seed_from_u64(13);
    for _ in 0..CASES {
        let sources = rand_sources(&mut rng, 1, 20, 3);
        let latency = rand_latency(&mut rng);
        let seed = rng.next_u64();
        let a = run_sources(&sources, latency, false, seed);
        let b = run_sources(&sources, latency, false, seed);
        assert_eq!(a.0, b.0, "{sources:?} {latency:?} seed={seed}");
    }
}

/// Zero-latency fixed delivery still drains cleanly: a message cannot be
/// lost or duplicated even when everything lands on the same tick.
#[test]
fn zero_latency_is_safe() {
    let mut rng = Rng::seed_from_u64(14);
    for _ in 0..CASES {
        let sources = rand_sources(&mut rng, 1, 10, 3);
        let seed = rng.next_u64();
        let (delivered, reason) =
            run_sources(&sources, LatencyModel::Fixed { ticks: 0 }, false, seed);
        assert_eq!(reason, StopReason::QueueDrained);
        assert_eq!(delivered.len() as u64, sources.iter().sum::<u64>());
    }
}

//! Property-based tests of the simulator's delivery guarantees.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use wcp_sim::{Actor, ActorId, Context, LatencyModel, SimConfig, Simulation, StopReason, WireSize};

#[derive(Clone, Debug, PartialEq)]
struct Tagged {
    seq: u64,
    sender: u32,
}

impl WireSize for Tagged {
    fn wire_size(&self) -> usize {
        12
    }
}

/// Sends `count` tagged messages to a sink on start.
struct Source {
    to: ActorId,
    count: u64,
    id: u32,
}

impl Actor<Tagged> for Source {
    fn on_start(&mut self, ctx: &mut dyn Context<Tagged>) {
        for seq in 0..self.count {
            ctx.send(
                self.to,
                Tagged {
                    seq,
                    sender: self.id,
                },
            );
        }
    }
    fn on_message(&mut self, _: &mut dyn Context<Tagged>, _: ActorId, _: Tagged) {}
}

/// Records all deliveries.
struct Sink(Arc<Mutex<Vec<Tagged>>>);

impl Actor<Tagged> for Sink {
    fn on_message(&mut self, _: &mut dyn Context<Tagged>, _: ActorId, msg: Tagged) {
        self.0.lock().unwrap().push(msg);
    }
}

fn run_sources(
    sources: &[u64],
    latency: LatencyModel,
    fifo: bool,
    seed: u64,
) -> (Vec<Tagged>, StopReason) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(
        SimConfig::seeded(seed)
            .with_latency(latency)
            .with_fifo_default(fifo),
    );
    let sink = sim.add_actor(Box::new(Sink(log.clone())));
    for (i, &count) in sources.iter().enumerate() {
        sim.add_actor(Box::new(Source {
            to: sink,
            count,
            id: i as u32,
        }));
    }
    let outcome = sim.run();
    let delivered = log.lock().unwrap().clone();
    (delivered, outcome.reason)
}

fn arb_latency() -> impl Strategy<Value = LatencyModel> {
    prop_oneof![
        (0u64..5).prop_map(|t| LatencyModel::Fixed { ticks: t }),
        (1u64..5, 5u64..60).prop_map(|(min, max)| LatencyModel::Uniform { min, max }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reliability: every sent message is delivered exactly once, whatever
    /// the latency model or ordering mode.
    #[test]
    fn every_message_delivered_exactly_once(
        sources in proptest::collection::vec(0u64..30, 1..5),
        latency in arb_latency(),
        fifo in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let total: u64 = sources.iter().sum();
        let (delivered, reason) = run_sources(&sources, latency, fifo, seed);
        prop_assert_eq!(reason, StopReason::QueueDrained);
        prop_assert_eq!(delivered.len() as u64, total);
        // Exactly once: each (sender, seq) pair appears once.
        let mut seen: Vec<(u32, u64)> = delivered.iter().map(|t| (t.sender, t.seq)).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as u64, total);
    }

    /// FIFO mode preserves per-sender order even under heavy jitter.
    #[test]
    fn fifo_preserves_per_sender_order(
        sources in proptest::collection::vec(1u64..30, 1..5),
        seed in any::<u64>(),
    ) {
        let (delivered, _) =
            run_sources(&sources, LatencyModel::Uniform { min: 1, max: 50 }, true, seed);
        for sender in 0..sources.len() as u32 {
            let seqs: Vec<u64> = delivered
                .iter()
                .filter(|t| t.sender == sender)
                .map(|t| t.seq)
                .collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "sender {sender}: {seqs:?}");
        }
    }

    /// Determinism: identical configurations produce identical delivery
    /// sequences.
    #[test]
    fn determinism(
        sources in proptest::collection::vec(1u64..20, 1..4),
        latency in arb_latency(),
        seed in any::<u64>(),
    ) {
        let a = run_sources(&sources, latency, false, seed);
        let b = run_sources(&sources, latency, false, seed);
        prop_assert_eq!(a.0, b.0);
    }

    /// Zero-latency fixed delivery still respects causality: a message
    /// cannot be delivered before it is sent (deliveries happen strictly
    /// after scheduling order positions).
    #[test]
    fn zero_latency_is_safe(sources in proptest::collection::vec(1u64..10, 1..4), seed in any::<u64>()) {
        let (delivered, reason) =
            run_sources(&sources, LatencyModel::Fixed { ticks: 0 }, false, seed);
        prop_assert_eq!(reason, StopReason::QueueDrained);
        prop_assert_eq!(delivered.len() as u64, sources.iter().sum::<u64>());
    }
}

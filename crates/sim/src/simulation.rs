//! The discrete-event loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use wcp_obs::rng::Rng;
use wcp_obs::{LogicalTime, NullRecorder, Recorder, TraceEvent};

use crate::actor::{Actor, ActorId, Context, WireSize};
use crate::config::{LatencyModel, SimConfig};
use crate::metrics::SimMetrics;

/// Discrete simulation time, in abstract ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No messages remained in flight.
    QueueDrained,
    /// An actor called [`Context::stop`].
    Stopped,
    /// The [`SimConfig::max_deliveries`] safety valve fired.
    DeliveryLimit,
}

/// Result of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Why the run ended.
    pub reason: StopReason,
    /// Simulated time at the end of the run — the paper-level "detection
    /// latency" measure used by the parallelism experiments (E4, E8).
    pub time: SimTime,
    /// Total messages delivered.
    pub delivered: u64,
}

struct Delivery<M> {
    at: u64,
    seq: u64,
    sent_at: u64,
    from: ActorId,
    to: ActorId,
    msg: M,
}

impl<M> PartialEq for Delivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Delivery<M> {}
impl<M> PartialOrd for Delivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delivery<M> {
    /// Reversed so the `BinaryHeap` pops the earliest delivery first; `seq`
    /// breaks ties deterministically.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Side effects collected while one handler runs.
struct Effects<M> {
    me: ActorId,
    now: u64,
    outbox: Vec<(ActorId, M)>,
    work: u64,
    stop: bool,
}

impl<M> Context<M> for Effects<M> {
    fn me(&self) -> ActorId {
        self.me
    }
    fn send(&mut self, to: ActorId, msg: M) {
        self.outbox.push((to, msg));
    }
    fn add_work(&mut self, units: u64) {
        self.work += units;
    }
    fn stop(&mut self) {
        self.stop = true;
    }
    fn now(&self) -> u64 {
        self.now
    }
}

/// A deterministic discrete-event simulation of asynchronous message
/// passing among a set of [`Actor`]s.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Simulation<M> {
    config: SimConfig,
    actors: Vec<Box<dyn Actor<M>>>,
    queue: BinaryHeap<Delivery<M>>,
    rng: Rng,
    metrics: SimMetrics,
    recorder: Arc<dyn Recorder>,
    now: u64,
    seq: u64,
    delivered: u64,
    stop_requested: bool,
    started: bool,
    /// Latest scheduled delivery time per FIFO channel, to keep order.
    fifo_watermark: HashMap<(ActorId, ActorId), u64>,
}

impl<M: WireSize> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let rng = Rng::seed_from_u64(config.seed);
        Simulation {
            config,
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            rng,
            metrics: SimMetrics::new(0),
            recorder: Arc::new(NullRecorder),
            now: 0,
            seq: 0,
            delivered: 0,
            stop_requested: false,
            started: false,
            fifo_watermark: HashMap::new(),
        }
    }

    /// Registers an actor, returning its id. Actors must be added before
    /// [`run`](Self::run).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId::new(self.actors.len() as u32);
        self.actors.push(actor);
        self.metrics.ensure(self.actors.len());
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Attaches an event recorder. The simulator emits a
    /// [`TraceEvent::MessageDelivered`] per delivery (attributed to the
    /// receiving actor, with its queueing delay); actors may share the same
    /// recorder to emit their own algorithm-level events.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// Injects a message from the outside (attributed to `from`), e.g. to
    /// bootstrap a protocol in tests.
    pub fn post(&mut self, from: ActorId, to: ActorId, msg: M) {
        self.schedule(from, to, msg);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now)
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Runs until no messages are in flight, an actor stops the run, or the
    /// delivery safety valve fires.
    pub fn run(&mut self) -> SimOutcome {
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                let id = ActorId::new(i as u32);
                self.dispatch(id, None);
                if self.stop_requested {
                    return self.outcome(StopReason::Stopped);
                }
            }
        }
        while let Some(delivery) = self.queue.pop() {
            self.now = self.now.max(delivery.at);
            self.delivered += 1;
            let to = delivery.to;
            self.metrics.actor_mut(to).received += 1;
            if self.recorder.is_enabled() {
                self.recorder.record(
                    to.index() as u32,
                    LogicalTime::Tick(self.now),
                    TraceEvent::MessageDelivered {
                        from: delivery.from.index() as u32,
                        to: to.index() as u32,
                        delay: self.now - delivery.sent_at,
                    },
                );
            }
            self.dispatch(to, Some((delivery.from, delivery.msg)));
            if self.stop_requested {
                return self.outcome(StopReason::Stopped);
            }
            if self.config.max_deliveries > 0 && self.delivered >= self.config.max_deliveries {
                return self.outcome(StopReason::DeliveryLimit);
            }
        }
        self.outcome(StopReason::QueueDrained)
    }

    fn outcome(&self, reason: StopReason) -> SimOutcome {
        SimOutcome {
            reason,
            time: SimTime(self.now),
            delivered: self.delivered,
        }
    }

    /// Runs one handler (on_start when `event` is `None`) and applies its
    /// effects.
    fn dispatch(&mut self, id: ActorId, event: Option<(ActorId, M)>) {
        let mut effects = Effects {
            me: id,
            now: self.now,
            outbox: Vec::new(),
            work: 0,
            stop: false,
        };
        // Temporarily take the actor out so the handler can borrow the
        // context without aliasing the simulation.
        let mut actor = std::mem::replace(&mut self.actors[id.index()], Box::new(Inert));
        match event {
            None => actor.on_start(&mut effects),
            Some((from, msg)) => actor.on_message(&mut effects, from, msg),
        }
        self.actors[id.index()] = actor;

        self.metrics.actor_mut(id).work += effects.work;
        self.stop_requested |= effects.stop;
        for (to, msg) in effects.outbox {
            self.schedule(id, to, msg);
        }
    }

    fn schedule(&mut self, from: ActorId, to: ActorId, msg: M) {
        assert!(
            to.index() < self.actors.len(),
            "message addressed to unregistered actor {to}"
        );
        let latency = match self.config.latency {
            LatencyModel::Fixed { ticks } => ticks,
            LatencyModel::Uniform { min, max } => self.rng.gen_range(min..=max),
        };
        let mut at = self.now + latency;
        if self.config.is_fifo(from, to) {
            let watermark = self.fifo_watermark.entry((from, to)).or_insert(0);
            at = at.max(*watermark);
            *watermark = at;
        }
        {
            let m = self.metrics.actor_mut(from);
            m.sent += 1;
            m.bytes_sent += msg.wire_size() as u64;
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Delivery {
            at,
            seq,
            sent_at: self.now,
            from,
            to,
            msg,
        });
    }
}

impl<M> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("actors", &self.actors.len())
            .field("now", &self.now)
            .field("in_flight", &self.queue.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

/// Placeholder actor occupying a slot while its real actor is dispatched.
struct Inert;
impl<M> Actor<M> for Inert {
    fn on_message(&mut self, _ctx: &mut dyn Context<M>, _from: ActorId, _msg: M) {
        unreachable!("inert placeholder actor received a message");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Records the order in which payloads arrive.
    struct Recorder(Arc<Mutex<Vec<u64>>>);
    impl Actor<Num> for Recorder {
        fn on_message(&mut self, ctx: &mut dyn Context<Num>, _from: ActorId, msg: Num) {
            ctx.add_work(1);
            self.0.lock().unwrap().push(msg.0);
        }
    }

    /// Sends 0..n to a peer on start.
    struct Burst {
        to: ActorId,
        n: u64,
    }
    impl Actor<Num> for Burst {
        fn on_start(&mut self, ctx: &mut dyn Context<Num>) {
            for i in 0..self.n {
                ctx.send(self.to, Num(i));
            }
        }
        fn on_message(&mut self, _ctx: &mut dyn Context<Num>, _from: ActorId, _msg: Num) {}
    }

    fn recorder_pair(config: SimConfig, n: u64) -> (SimOutcome, Vec<u64>, SimMetrics) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new(config);
        let rec = sim.add_actor(Box::new(Recorder(log.clone())));
        let _src = sim.add_actor(Box::new(Burst { to: rec, n }));
        let outcome = sim.run();
        let order = log.lock().unwrap().clone();
        (outcome, order, sim.metrics().clone())
    }

    #[test]
    fn fifo_channel_preserves_order() {
        let config = SimConfig::seeded(3)
            .with_latency(LatencyModel::Uniform { min: 1, max: 50 })
            .with_fifo_default(true);
        let (outcome, order, _) = recorder_pair(config, 20);
        assert_eq!(outcome.reason, StopReason::QueueDrained);
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn non_fifo_channel_reorders_under_jitter() {
        let config = SimConfig::seeded(3).with_latency(LatencyModel::Uniform { min: 1, max: 50 });
        let (_, order, _) = recorder_pair(config, 20);
        assert_eq!(order.len(), 20);
        assert_ne!(order, (0..20).collect::<Vec<_>>(), "expected reordering");
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = SimConfig::seeded(7).with_latency(LatencyModel::Uniform { min: 1, max: 9 });
        let (o1, order1, m1) = recorder_pair(cfg.clone(), 30);
        let (o2, order2, m2) = recorder_pair(cfg, 30);
        assert_eq!(o1, o2);
        assert_eq!(order1, order2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn metrics_count_messages_bytes_work() {
        let cfg = SimConfig::seeded(0).with_latency(LatencyModel::Fixed { ticks: 1 });
        let (_, _, metrics) = recorder_pair(cfg, 5);
        assert_eq!(metrics.total_sent(), 5);
        assert_eq!(metrics.total_bytes(), 40);
        assert_eq!(metrics.total_work(), 5); // recorder adds 1 per delivery
        assert_eq!(metrics.actor(ActorId::new(1)).sent, 5);
        assert_eq!(metrics.actor(ActorId::new(0)).received, 5);
    }

    #[test]
    fn stop_halts_immediately() {
        struct Stopper;
        impl Actor<Num> for Stopper {
            fn on_message(&mut self, ctx: &mut dyn Context<Num>, from: ActorId, msg: Num) {
                if msg.0 >= 3 {
                    ctx.stop();
                } else {
                    ctx.send(from, Num(msg.0 + 1));
                }
            }
        }
        let mut sim = Simulation::new(SimConfig::seeded(0));
        let a = sim.add_actor(Box::new(Stopper));
        let b = sim.add_actor(Box::new(Stopper));
        sim.post(a, b, Num(0));
        let outcome = sim.run();
        assert_eq!(outcome.reason, StopReason::Stopped);
        assert_eq!(outcome.delivered, 4); // 0,1,2,3
    }

    #[test]
    fn delivery_limit_fires() {
        struct PingPong;
        impl Actor<Num> for PingPong {
            fn on_message(&mut self, ctx: &mut dyn Context<Num>, from: ActorId, msg: Num) {
                ctx.send(from, msg);
            }
        }
        let mut sim = Simulation::new(SimConfig::seeded(0).with_max_deliveries(25));
        let a = sim.add_actor(Box::new(PingPong));
        let b = sim.add_actor(Box::new(PingPong));
        sim.post(a, b, Num(0));
        let outcome = sim.run();
        assert_eq!(outcome.reason, StopReason::DeliveryLimit);
        assert_eq!(outcome.delivered, 25);
    }

    #[test]
    fn time_advances_with_latency() {
        let cfg = SimConfig::seeded(0).with_latency(LatencyModel::Fixed { ticks: 10 });
        let (outcome, _, _) = recorder_pair(cfg, 3);
        // All three sent at t0, delivered at t10.
        assert_eq!(outcome.time, SimTime(10));
    }

    #[test]
    fn recorder_sees_each_delivery_with_its_delay() {
        use wcp_obs::RingRecorder;
        let ring = Arc::new(RingRecorder::new(64));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim =
            Simulation::new(SimConfig::seeded(0).with_latency(LatencyModel::Fixed { ticks: 4 }));
        sim.set_recorder(ring.clone());
        let rec = sim.add_actor(Box::new(Recorder(log.clone())));
        sim.add_actor(Box::new(Burst { to: rec, n: 3 }));
        sim.run();
        let events = ring.events();
        assert_eq!(events.len(), 3);
        for e in &events {
            assert_eq!(e.monitor, rec.index() as u32);
            assert_eq!(e.time, LogicalTime::Tick(4));
            match e.event {
                TraceEvent::MessageDelivered { from, to, delay } => {
                    assert_eq!((from, to, delay), (1, 0, 4));
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "unregistered actor")]
    fn sending_to_unknown_actor_panics() {
        let mut sim: Simulation<Num> = Simulation::new(SimConfig::default());
        let a = sim.add_actor(Box::new(Recorder(Arc::new(Mutex::new(Vec::new())))));
        sim.post(a, ActorId::new(9), Num(0));
    }

    #[test]
    fn on_start_runs_once_per_actor() {
        struct Greeter {
            peer: ActorId,
            started: Arc<Mutex<u32>>,
        }
        impl Actor<Num> for Greeter {
            fn on_start(&mut self, ctx: &mut dyn Context<Num>) {
                *self.started.lock().unwrap() += 1;
                ctx.send(self.peer, Num(1));
            }
            fn on_message(&mut self, _: &mut dyn Context<Num>, _: ActorId, _: Num) {}
        }
        let started = Arc::new(Mutex::new(0));
        let mut sim = Simulation::new(SimConfig::seeded(0));
        let sink = sim.add_actor(Box::new(Recorder(Arc::new(Mutex::new(Vec::new())))));
        sim.add_actor(Box::new(Greeter {
            peer: sink,
            started: started.clone(),
        }));
        sim.run();
        sim.run(); // second run must not restart actors
        assert_eq!(*started.lock().unwrap(), 1);
    }
}

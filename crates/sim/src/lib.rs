//! Deterministic discrete-event simulator for asynchronous message passing.
//!
//! The paper's system model (Section 2) is "a loosely-coupled
//! message-passing system without any shared memory or a global clock",
//! with reliable, not-necessarily-FIFO channels. This crate provides that
//! substrate as a deterministic discrete-event simulation:
//!
//! - [`Actor`] — a process: a state machine reacting to delivered messages,
//! - [`Context`] — what an actor can do: send messages, count work units,
//!   stop the simulation,
//! - [`Simulation`] — the event loop: a seeded network with configurable
//!   latency, per-channel FIFO control, and per-actor metrics.
//!
//! Determinism: given the same actors, configuration and seed, a simulation
//! delivers the same messages in the same order, so every experiment in this
//! repository is replayable.
//!
//! # Example
//!
//! ```rust
//! use wcp_sim::{Actor, ActorId, Context, SimConfig, Simulation, WireSize};
//!
//! #[derive(Clone)]
//! struct Ping(u32);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//!
//! /// Echoes each ping back with one less hop, stopping at zero.
//! struct Echo;
//! impl Actor<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut dyn Context<Ping>, from: ActorId, msg: Ping) {
//!         if msg.0 == 0 {
//!             ctx.stop();
//!         } else {
//!             ctx.send(from, Ping(msg.0 - 1));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let a = sim.add_actor(Box::new(Echo));
//! let b = sim.add_actor(Box::new(Echo));
//! sim.post(a, b, Ping(10)); // inject the first message
//! let outcome = sim.run();
//! assert_eq!(outcome.delivered, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod config;
mod metrics;
mod simulation;

pub use actor::{Actor, ActorId, Context, WireSize};
pub use config::{FaultConfig, LatencyModel, SimConfig};
pub use metrics::{ActorMetrics, SimMetrics};
pub use simulation::{SimOutcome, SimTime, Simulation, StopReason};

//! Simulation configuration.

use crate::actor::ActorId;

/// Message latency model for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` time units.
    Fixed {
        /// Delivery delay in time units (may be 0).
        ticks: u64,
    },
    /// Latency drawn uniformly from `min..=max` per message; with a non-FIFO
    /// channel this reorders messages, exercising the paper's "no FIFO
    /// assumption" (Section 2).
    Uniform {
        /// Minimum delay.
        min: u64,
        /// Maximum delay (inclusive).
        max: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Uniform { min: 1, max: 10 }
    }
}

/// Configuration of a [`Simulation`](crate::Simulation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimConfig {
    /// Latency model for all channels.
    pub latency: LatencyModel,
    /// Whether channels preserve order by default. The paper requires FIFO
    /// only between an application process and its monitor; the default is
    /// non-FIFO, matching the paper's weakest assumption.
    pub fifo_by_default: bool,
    /// Channels forced FIFO regardless of the default (e.g. application →
    /// monitor links).
    pub fifo_channels: Vec<(ActorId, ActorId)>,
    /// RNG seed for latency draws.
    pub seed: u64,
    /// Safety valve: abort after this many deliveries (0 = unlimited).
    pub max_deliveries: u64,
}

impl SimConfig {
    /// Config with a specific seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Makes every channel FIFO.
    pub fn with_fifo_default(mut self, fifo: bool) -> Self {
        self.fifo_by_default = fifo;
        self
    }

    /// Forces the `from → to` channel to be FIFO.
    pub fn with_fifo_channel(mut self, from: ActorId, to: ActorId) -> Self {
        self.fifo_channels.push((from, to));
        self
    }

    /// Sets the delivery safety valve.
    pub fn with_max_deliveries(mut self, max: u64) -> Self {
        self.max_deliveries = max;
        self
    }

    /// Whether the `from → to` channel preserves order.
    pub fn is_fifo(&self, from: ActorId, to: ActorId) -> bool {
        self.fifo_by_default || self.fifo_channels.contains(&(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_non_fifo_uniform() {
        let c = SimConfig::default();
        assert!(!c.fifo_by_default);
        assert_eq!(c.latency, LatencyModel::Uniform { min: 1, max: 10 });
        assert!(!c.is_fifo(ActorId::new(0), ActorId::new(1)));
    }

    #[test]
    fn fifo_channel_overrides() {
        let c = SimConfig::default().with_fifo_channel(ActorId::new(0), ActorId::new(1));
        assert!(c.is_fifo(ActorId::new(0), ActorId::new(1)));
        assert!(!c.is_fifo(ActorId::new(1), ActorId::new(0)));
    }

    #[test]
    fn fifo_default_covers_all_channels() {
        let c = SimConfig::default().with_fifo_default(true);
        assert!(c.is_fifo(ActorId::new(3), ActorId::new(4)));
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::seeded(9)
            .with_latency(LatencyModel::Fixed { ticks: 2 })
            .with_max_deliveries(100);
        assert_eq!(c.seed, 9);
        assert_eq!(c.latency, LatencyModel::Fixed { ticks: 2 });
        assert_eq!(c.max_deliveries, 100);
    }
}

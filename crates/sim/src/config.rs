//! Simulation configuration.

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

use crate::actor::ActorId;

/// Message latency model for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` time units.
    Fixed {
        /// Delivery delay in time units (may be 0).
        ticks: u64,
    },
    /// Latency drawn uniformly from `min..=max` per message; with a non-FIFO
    /// channel this reorders messages, exercising the paper's "no FIFO
    /// assumption" (Section 2).
    Uniform {
        /// Minimum delay.
        min: u64,
        /// Maximum delay (inclusive).
        max: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Uniform { min: 1, max: 10 }
    }
}

// A `LatencyModel` travels in fuzz corpus case files as a one-key object.
impl ToJson for LatencyModel {
    fn to_json(&self) -> Json {
        match *self {
            LatencyModel::Fixed { ticks } => Json::obj([("fixed", Json::UInt(ticks))]),
            LatencyModel::Uniform { min, max } => Json::obj([(
                "uniform",
                Json::obj([("min", Json::UInt(min)), ("max", Json::UInt(max))]),
            )]),
        }
    }
}

impl FromJson for LatencyModel {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_object() {
            Some([(tag, payload)]) if tag == "fixed" => Ok(LatencyModel::Fixed {
                ticks: payload.expect_u64()?,
            }),
            Some([(tag, payload)]) if tag == "uniform" => Ok(LatencyModel::Uniform {
                min: payload.field("min")?.expect_u64()?,
                max: payload.field("max")?.expect_u64()?,
            }),
            _ => Err(JsonError::shape(format!(
                "expected {{\"fixed\":…}} or {{\"uniform\":…}}, got {value}"
            ))),
        }
    }
}

/// A seeded, per-link fault schedule: the shared vocabulary between the
/// simulator's adversarial latency models and `wcp-net`'s `FaultyTransport`.
///
/// Each field is the probability (in `0.0..=1.0`) that the corresponding
/// fault is injected on one frame transmission. Which frames are hit is
/// fully determined by `seed` (each link derives its own RNG stream from
/// it), so a fault schedule reproduces exactly across runs; *when* a
/// delayed frame actually lands is wall-clock timing and is masked by the
/// receiver's per-link resequencing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// RNG seed the per-link fault streams are derived from.
    pub seed: u64,
    /// Probability a transmission is dropped; the link layer retransmits
    /// with exponential backoff, so a drop costs retries, not delivery.
    pub drop: f64,
    /// Probability a frame is transmitted twice (receiver dedups by seq).
    pub duplicate: f64,
    /// Probability a frame is held back `1..=max_delay_ms` milliseconds,
    /// letting later frames overtake it.
    pub delay: f64,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Probability a frame is swapped with the next frame on the link
    /// (deterministic reorder, independent of wall-clock timing).
    pub reorder: f64,
    /// Probability the connection is torn down before a transmission; the
    /// sender reconnects with exponential backoff and replays its log.
    pub reset: f64,
    /// Maximum retransmit/reconnect attempts before the link gives up.
    pub max_retries: u32,
    /// Base backoff, in milliseconds; attempt `k` waits `base << k`.
    pub backoff_base_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ms: 5,
            reorder: 0.0,
            reset: 0.0,
            max_retries: 8,
            backoff_base_ms: 1,
        }
    }
}

impl FaultConfig {
    /// A fault-free schedule with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// The canonical tolerated-fault schedule: delay + duplicate + reorder
    /// (no drops or resets), which the detection protocols must mask
    /// without changing the `Detection`.
    pub fn delay_duplicate_reorder(seed: u64) -> Self {
        FaultConfig {
            delay: 0.25,
            duplicate: 0.2,
            reorder: 0.2,
            ..FaultConfig::seeded(seed)
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the delay probability.
    pub fn with_delay(mut self, p: f64) -> Self {
        self.delay = p;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the connection-reset probability.
    pub fn with_reset(mut self, p: f64) -> Self {
        self.reset = p;
        self
    }

    /// Whether the schedule injects any fault at all.
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.reorder == 0.0
            && self.reset == 0.0
    }
}

// A `FaultConfig` round-trips through JSON exactly, so a fuzz corpus case
// replays the same deterministic fault schedule.
impl ToJson for FaultConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::UInt(self.seed)),
            ("drop", Json::Float(self.drop)),
            ("duplicate", Json::Float(self.duplicate)),
            ("delay", Json::Float(self.delay)),
            ("max_delay_ms", Json::UInt(self.max_delay_ms)),
            ("reorder", Json::Float(self.reorder)),
            ("reset", Json::Float(self.reset)),
            ("max_retries", Json::UInt(self.max_retries as u64)),
            ("backoff_base_ms", Json::UInt(self.backoff_base_ms)),
        ])
    }
}

impl FromJson for FaultConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let f64_field = |name: &str| -> Result<f64, JsonError> {
            value
                .field(name)?
                .as_f64()
                .ok_or_else(|| JsonError::shape(format!("{name}: expected a number")))
        };
        Ok(FaultConfig {
            seed: value.field("seed")?.expect_u64()?,
            drop: f64_field("drop")?,
            duplicate: f64_field("duplicate")?,
            delay: f64_field("delay")?,
            max_delay_ms: value.field("max_delay_ms")?.expect_u64()?,
            reorder: f64_field("reorder")?,
            reset: f64_field("reset")?,
            max_retries: value.field("max_retries")?.expect_u64()? as u32,
            backoff_base_ms: value.field("backoff_base_ms")?.expect_u64()?,
        })
    }
}

/// Configuration of a [`Simulation`](crate::Simulation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimConfig {
    /// Latency model for all channels.
    pub latency: LatencyModel,
    /// Whether channels preserve order by default. The paper requires FIFO
    /// only between an application process and its monitor; the default is
    /// non-FIFO, matching the paper's weakest assumption.
    pub fifo_by_default: bool,
    /// Channels forced FIFO regardless of the default (e.g. application →
    /// monitor links).
    pub fifo_channels: Vec<(ActorId, ActorId)>,
    /// RNG seed for latency draws.
    pub seed: u64,
    /// Safety valve: abort after this many deliveries (0 = unlimited).
    pub max_deliveries: u64,
}

impl SimConfig {
    /// Config with a specific seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Makes every channel FIFO.
    pub fn with_fifo_default(mut self, fifo: bool) -> Self {
        self.fifo_by_default = fifo;
        self
    }

    /// Forces the `from → to` channel to be FIFO.
    pub fn with_fifo_channel(mut self, from: ActorId, to: ActorId) -> Self {
        self.fifo_channels.push((from, to));
        self
    }

    /// Sets the delivery safety valve.
    pub fn with_max_deliveries(mut self, max: u64) -> Self {
        self.max_deliveries = max;
        self
    }

    /// Whether the `from → to` channel preserves order.
    pub fn is_fifo(&self, from: ActorId, to: ActorId) -> bool {
        self.fifo_by_default || self.fifo_channels.contains(&(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_non_fifo_uniform() {
        let c = SimConfig::default();
        assert!(!c.fifo_by_default);
        assert_eq!(c.latency, LatencyModel::Uniform { min: 1, max: 10 });
        assert!(!c.is_fifo(ActorId::new(0), ActorId::new(1)));
    }

    #[test]
    fn fifo_channel_overrides() {
        let c = SimConfig::default().with_fifo_channel(ActorId::new(0), ActorId::new(1));
        assert!(c.is_fifo(ActorId::new(0), ActorId::new(1)));
        assert!(!c.is_fifo(ActorId::new(1), ActorId::new(0)));
    }

    #[test]
    fn fifo_default_covers_all_channels() {
        let c = SimConfig::default().with_fifo_default(true);
        assert!(c.is_fifo(ActorId::new(3), ActorId::new(4)));
    }

    #[test]
    fn fault_config_defaults_are_quiet() {
        let f = FaultConfig::seeded(11);
        assert!(f.is_quiet());
        assert_eq!(f.seed, 11);
        let f = f.with_delay(0.5).with_duplicate(0.1);
        assert!(!f.is_quiet());
        assert!(FaultConfig::delay_duplicate_reorder(3).drop == 0.0);
        assert!(!FaultConfig::delay_duplicate_reorder(3).is_quiet());
    }

    #[test]
    fn latency_and_fault_json_roundtrip() {
        for model in [
            LatencyModel::Fixed { ticks: 0 },
            LatencyModel::Fixed { ticks: 7 },
            LatencyModel::Uniform { min: 1, max: 25 },
        ] {
            let json = model.to_json().pretty();
            let back = LatencyModel::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, model, "{json}");
        }
        assert!(LatencyModel::from_json(&Json::Str("fast".into())).is_err());

        let faults = FaultConfig::delay_duplicate_reorder(42)
            .with_drop(0.125)
            .with_reset(0.0625);
        let json = faults.to_json().pretty();
        let back = FaultConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, faults, "{json}");
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::seeded(9)
            .with_latency(LatencyModel::Fixed { ticks: 2 })
            .with_max_deliveries(100);
        assert_eq!(c.seed, 9);
        assert_eq!(c.latency, LatencyModel::Fixed { ticks: 2 });
        assert_eq!(c.max_deliveries, 100);
    }
}

//! The actor abstraction shared by the simulator and the threaded runtime.

use std::fmt;

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

/// Identifier of an actor within one [`Simulation`](crate::Simulation) (or
/// one `wcp-runtime` run).
///
/// Note this is distinct from `wcp_clocks::ProcessId`: a detection setup
/// hosts `2N` actors (`N` application processes plus `N` monitor
/// processes); the mapping between the two id spaces is owned by the
/// detection layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ActorId(u32);

impl ActorId {
    /// Creates an actor id from a zero-based index.
    pub const fn new(index: u32) -> Self {
        ActorId(index)
    }

    /// Zero-based index, usable to index vectors of actors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

// An `ActorId` travels on the wire as a bare integer.
impl ToJson for ActorId {
    fn to_json(&self) -> Json {
        Json::UInt(u64::from(self.0))
    }
}

impl FromJson for ActorId {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let raw = value.expect_u64()?;
        u32::try_from(raw)
            .map(ActorId)
            .map_err(|_| JsonError::shape(format!("ActorId out of range: {raw}")))
    }
}

/// Size of a payload on the wire, in bytes.
///
/// The paper's analyses (Sections 3.4, 4.4) bound the number of *bits*
/// communicated; the metrics layer uses this trait to account them.
pub trait WireSize {
    /// Number of bytes this value occupies when transmitted.
    fn wire_size(&self) -> usize;
}

/// What an actor may do while handling an event.
///
/// Both the discrete-event [`Simulation`](crate::Simulation) and the
/// threaded `wcp-runtime` implement this trait, so the same actor code runs
/// on either substrate.
pub trait Context<M> {
    /// This actor's own id.
    fn me(&self) -> ActorId;

    /// Sends `msg` asynchronously to `to`. Delivery order is only
    /// guaranteed on channels configured FIFO.
    fn send(&mut self, to: ActorId, msg: M);

    /// Records `units` of algorithmic work for this actor (the unit is
    /// defined by the algorithm; see DESIGN.md §3 "Work accounting").
    fn add_work(&mut self, units: u64);

    /// Requests that the whole run stop after this handler returns (used
    /// when the predicate has been detected).
    fn stop(&mut self);

    /// Current logical time, when the substrate has one. The discrete-event
    /// simulator reports its tick; the threaded runtime has no global clock
    /// and reports `0` (observability there uses wall-clock stamps instead).
    fn now(&self) -> u64 {
        0
    }
}

/// A process in the paper's model: a deterministic state machine driven by
/// message deliveries.
///
/// Actors must be `Send` so the same implementation can run on the threaded
/// runtime.
pub trait Actor<M>: Send {
    /// Invoked once before any message is delivered.
    fn on_start(&mut self, ctx: &mut dyn Context<M>) {
        let _ = ctx;
    }

    /// Invoked for each delivered message.
    fn on_message(&mut self, ctx: &mut dyn Context<M>, from: ActorId, msg: M);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_roundtrip_and_display() {
        let a = ActorId::new(4);
        assert_eq!(a.index(), 4);
        assert_eq!(a.to_string(), "A4");
        assert!(ActorId::new(1) < ActorId::new(2));
    }

    #[test]
    fn wire_size_is_object_safe() {
        struct Two;
        impl WireSize for Two {
            fn wire_size(&self) -> usize {
                2
            }
        }
        let b: Box<dyn WireSize> = Box::new(Two);
        assert_eq!(b.wire_size(), 2);
    }
}

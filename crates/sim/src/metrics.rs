//! Per-actor and aggregate metrics.

use std::fmt;

use wcp_obs::json::{Json, ToJson};

use crate::actor::ActorId;

/// Counters for one actor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActorMetrics {
    /// Messages sent.
    pub sent: u64,
    /// Messages received (delivered handlers invoked).
    pub received: u64,
    /// Bytes sent (per [`WireSize`](crate::WireSize)).
    pub bytes_sent: u64,
    /// Algorithmic work units recorded via
    /// [`Context::add_work`](crate::Context::add_work).
    pub work: u64,
}

impl ToJson for ActorMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sent", Json::UInt(self.sent)),
            ("received", Json::UInt(self.received)),
            ("bytes_sent", Json::UInt(self.bytes_sent)),
            ("work", Json::UInt(self.work)),
        ])
    }
}

/// Metrics for a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    per_actor: Vec<ActorMetrics>,
}

impl ToJson for SimMetrics {
    fn to_json(&self) -> Json {
        Json::Arr(self.per_actor.iter().map(ActorMetrics::to_json).collect())
    }
}

impl SimMetrics {
    /// Creates zeroed metrics for `actors` actors.
    pub fn new(actors: usize) -> Self {
        SimMetrics {
            per_actor: vec![ActorMetrics::default(); actors],
        }
    }

    /// Grows the vector when actors are added.
    pub(crate) fn ensure(&mut self, actors: usize) {
        if self.per_actor.len() < actors {
            self.per_actor.resize(actors, ActorMetrics::default());
        }
    }

    /// Metrics of one actor.
    pub fn actor(&self, id: ActorId) -> &ActorMetrics {
        &self.per_actor[id.index()]
    }

    /// Mutable metrics of one actor.
    pub(crate) fn actor_mut(&mut self, id: ActorId) -> &mut ActorMetrics {
        &mut self.per_actor[id.index()]
    }

    /// Records one sent message of `bytes` bytes for `id` (used by
    /// alternative runtimes such as `wcp-runtime`).
    pub fn record_send(&mut self, id: ActorId, bytes: u64) {
        let m = &mut self.per_actor[id.index()];
        m.sent += 1;
        m.bytes_sent += bytes;
    }

    /// Records one delivered message for `id`.
    pub fn record_receive(&mut self, id: ActorId) {
        self.per_actor[id.index()].received += 1;
    }

    /// Records `units` of algorithmic work for `id`.
    pub fn record_work(&mut self, id: ActorId, units: u64) {
        self.per_actor[id.index()].work += units;
    }

    /// Iterates over `(ActorId, &ActorMetrics)`.
    pub fn iter(&self) -> impl Iterator<Item = (ActorId, &ActorMetrics)> {
        self.per_actor
            .iter()
            .enumerate()
            .map(|(i, m)| (ActorId::new(i as u32), m))
    }

    /// Total messages sent by all actors.
    pub fn total_sent(&self) -> u64 {
        self.per_actor.iter().map(|m| m.sent).sum()
    }

    /// Total bytes sent by all actors.
    pub fn total_bytes(&self) -> u64 {
        self.per_actor.iter().map(|m| m.bytes_sent).sum()
    }

    /// Total work units over all actors.
    pub fn total_work(&self) -> u64 {
        self.per_actor.iter().map(|m| m.work).sum()
    }

    /// Largest per-actor work (the load-balance figure the paper's
    /// distributed algorithms improve).
    pub fn max_work(&self) -> u64 {
        self.per_actor.iter().map(|m| m.work).max().unwrap_or(0)
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs={} bytes={} work={} (max/actor {})",
            self.total_sent(),
            self.total_bytes(),
            self.total_work(),
            self.max_work()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_per_actor() {
        let mut m = SimMetrics::new(2);
        m.actor_mut(ActorId::new(0)).sent = 3;
        m.actor_mut(ActorId::new(0)).bytes_sent = 30;
        m.actor_mut(ActorId::new(1)).sent = 4;
        m.actor_mut(ActorId::new(1)).work = 7;
        assert_eq!(m.total_sent(), 7);
        assert_eq!(m.total_bytes(), 30);
        assert_eq!(m.total_work(), 7);
        assert_eq!(m.max_work(), 7);
        assert_eq!(m.actor(ActorId::new(0)).sent, 3);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn ensure_grows_without_resetting() {
        let mut m = SimMetrics::new(1);
        m.actor_mut(ActorId::new(0)).work = 5;
        m.ensure(3);
        assert_eq!(m.actor(ActorId::new(0)).work, 5);
        assert_eq!(m.actor(ActorId::new(2)).work, 0);
    }

    #[test]
    fn display_is_compact() {
        let m = SimMetrics::new(1);
        assert!(m.to_string().contains("msgs=0"));
    }
}

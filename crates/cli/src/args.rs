//! Minimal flag parser: `--key value` pairs, repeated flags, positionals.

use std::collections::HashMap;

use crate::CliError;

/// Parsed arguments: positionals in order, flags by name (repeatable).
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "diagram",
    "json",
    "dot",
    "shrink",
    "no-net",
    "net-batch",
    "wire-v2",
    "audit-bounds",
    "telemetry",
    "multi",
    "pump-parallel",
    "parallel-detect",
];

impl Args {
    /// Parses raw arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage error when a value-taking flag has no value.
    pub fn parse(raw: &[String]) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(token) = it.next() {
            if let Some(name) = token
                .strip_prefix("--")
                .or_else(|| (token.starts_with('-') && token.len() == 2).then(|| &token[1..]))
            {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                    continue;
                }
                let Some(value) = it.next() else {
                    return Err(CliError::usage(format!("flag --{name} needs a value")));
                };
                args.flags
                    .entry(name.to_string())
                    .or_default()
                    .push(value.clone());
            } else {
                args.positionals.push(token.clone());
            }
        }
        Ok(args)
    }

    /// The `index`-th positional argument.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// A required positional.
    ///
    /// # Errors
    ///
    /// Usage error naming the missing argument.
    pub fn require_positional(&self, index: usize, name: &str) -> Result<&str, CliError> {
        self.positional(index)
            .ok_or_else(|| CliError::usage(format!("missing {name}")))
    }

    /// The last value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.flags.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a no-value switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required flag parsed into `T`.
    ///
    /// # Errors
    ///
    /// Usage error when missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let raw = self
            .get(name)
            .ok_or_else(|| CliError::usage(format!("missing --{name}")))?;
        raw.parse()
            .map_err(|_| CliError::usage(format!("--{name}: cannot parse `{raw}`")))
    }

    /// An optional flag parsed into `T`, with a default.
    ///
    /// # Errors
    ///
    /// Usage error when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::usage(format!("--{name}: cannot parse `{raw}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_flags_positionals_switches() {
        let a = parse(&["run.json", "--scope", "0,1", "--diagram", "--seed", "7"]);
        assert_eq!(a.positional(0), Some("run.json"));
        assert_eq!(a.get("scope"), Some("0,1"));
        assert!(a.switch("diagram"));
        assert!(!a.switch("json"));
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn short_o_flag() {
        let a = parse(&["-o", "out.json"]);
        assert_eq!(a.get("o"), Some("out.json"));
    }

    #[test]
    fn repeated_flags_accumulate() {
        let a = parse(&["--channel", "0-1:empty", "--channel", "1-2:atmost:3"]);
        assert_eq!(a.get_all("channel").len(), 2);
        assert_eq!(a.get("channel"), Some("1-2:atmost:3"));
    }

    #[test]
    fn missing_value_is_usage_error() {
        let err = Args::parse(&["--seed".to_string()]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--seed"));
    }

    #[test]
    fn require_reports_missing_and_bad() {
        let a = parse(&["--n", "abc"]);
        assert!(a.require::<u64>("m").is_err());
        assert!(a.require::<u64>("n").is_err());
        assert!(a.require_positional(0, "FILE").is_err());
    }
}

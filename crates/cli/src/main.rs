//! The `wcp` binary: see [`wcp_cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match wcp_cli::run(&argv) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wcp: {e}");
            ExitCode::from(e.code)
        }
    }
}

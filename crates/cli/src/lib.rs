//! Implementation of the `wcp` command-line tool.
//!
//! The CLI wraps the library workflow end to end:
//!
//! ```sh
//! wcp generate --processes 6 --events 20 --seed 7 --plant 0.8 -o run.json
//! wcp info run.json
//! wcp detect run.json --scope 0,1,2 --algorithm token
//! wcp detect run.json --algorithm direct --diagram
//! wcp gcp run.json --channel 0-1:empty --channel 1-2:atmost:2
//! wcp render run.json --dot > run.dot
//! wcp bound --n 8 --m 100
//! ```
//!
//! Argument parsing is hand-rolled (the repo's dependency policy keeps the
//! tree lean; see DESIGN.md §6); every command is a pure function from
//! parsed arguments to output text, so the whole surface is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable problem description.
    pub message: String,
    /// Process exit code to use.
    pub code: u8,
}

impl CliError {
    /// Usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// Runtime error (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::runtime(format!("io error: {e}"))
    }
}

impl From<wcp_obs::json::JsonError> for CliError {
    fn from(e: wcp_obs::json::JsonError) -> Self {
        CliError::runtime(format!("json error: {e}"))
    }
}

/// Top-level dispatch: parses `argv[1..]` and runs the command, returning
/// the text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, malformed arguments, or
/// failing operations.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    match command.as_str() {
        "generate" => commands::generate(rest),
        "info" => commands::info(rest),
        "detect" => commands::detect(rest),
        "gcp" => commands::gcp(rest),
        "render" => commands::render(rest),
        "lattice" => commands::lattice(rest),
        "trace" => commands::trace(rest),
        "stats" => commands::stats(rest),
        "top" => commands::top(rest),
        "obs-report" => commands::obs_report(rest),
        "net-demo" => commands::net_demo(rest),
        "multi-demo" => commands::multi_demo(rest),
        "fuzz" => commands::fuzz(rest),
        "serve" => commands::serve(rest),
        "bound" => commands::bound(rest),
        "help" | "-h" | "--help" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

/// The usage text.
pub const USAGE: &str = "\
wcp — distributed detection of conjunctive predicates

USAGE:
  wcp generate --processes N --events M [--seed S] [--density D]
               [--plant F] [--topology uniform|ring|cs:K|nb:K] -o FILE
  wcp info FILE
  wcp detect FILE [--scope 0,1,2] [--algorithm token|checker|direct|lattice|multi:G|parallel[:T]]
              [--diagram] [--json] [--slice OUT.json]
  wcp gcp FILE [--scope 0,1,2] [--channel FROM-TO:empty|atmost:K|atleast:K]...
  wcp render FILE [--dot] [--scope 0,1,2]
  wcp lattice FILE [--scope 0,1,2] [--max-states K]
  wcp trace FILE --events OUT.jsonl [--scope 0,1,2] [--algorithm ...]
            [--capacity K] [--json]
  wcp stats FILE [--scope 0,1,2] [--seed S] [--capacity K]
  wcp top FILE [--scope 0,1,2] [--interval-ms MS] [--frames K]
          [--transport tcp|loopback | --peer I --addrs HOST:PORT,...]
          [--deadline SECS]
  wcp obs-report FILE [--scope 0,1,2] [--events OUT.jsonl]
             [--transport tcp|loopback | --peer I --addrs HOST:PORT,...]
             [--deadline SECS]
  wcp net-demo FILE [--scope 0,1,2] [--algorithm token|direct]
               [--transport tcp|loopback] [--fault-seed S] [--drop P]
               [--delay P] [--duplicate P] [--reorder P] [--reset P] [--json]
  wcp multi-demo FILE [--predicates K] [--transport tcp|loopback] [--seed S]
                 [--pump-threads T] [--fault-seed S] [--drop P] [--delay P]
                 [--duplicate P] [--reorder P] [--reset P] [--deadline SECS]
  wcp serve FILE --peer I --addrs HOST:PORT,HOST:PORT,...
            [--scope 0,1,2] [--deadline SECS] [--telemetry]
            [--multi [--predicates K] [--pump-threads T]]
  wcp fuzz [--seed S] [--cases K] [--shrink] [--no-net] [--net-batch]
           [--multi] [--pump-parallel] [--parallel-detect] [--audit-bounds]
  wcp bound --n N --m M
  wcp help";

//! The CLI commands. Each is a pure function from parsed arguments to the
//! stdout text, so the suite below tests the full surface without spawning
//! processes.

use std::fs;
use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wcp_clocks::ProcessId;
use wcp_detect::lower_bound::run_optimal_algorithm;
use wcp_detect::online::{run_direct, run_direct_recorded, run_vc_token, run_vc_token_recorded};
use wcp_detect::{
    audit_bounds, BoundLimits, CentralizedChecker, ChannelPredicate, ChannelTerm, Detection,
    DetectionReport, Detector, DirectDependenceDetector, Gcp, GcpChecker, LatticeDetector,
    MultiTokenDetector, ParallelDetector, TokenDetector,
};
use wcp_net::{
    run_direct_net, run_multi_net, run_vc_token_net, run_vc_token_net_observed,
    run_vc_token_net_recorded, serve_multi_peer, serve_vc_peer, serve_vc_peer_observed, NetConfig,
    NetReport, TelemetryCollector, TransportKind,
};
use wcp_obs::json::{FromJson, Json, ToJson};
use wcp_obs::{jsonl, NullRecorder, Recorder, RingRecorder, RunReport};
use wcp_session::{run_multi_sim, PredicateOutcome};
use wcp_sim::{FaultConfig, SimConfig};
use wcp_trace::channel::ChannelId;
use wcp_trace::generate::{generate as generate_workload, GeneratorConfig, Topology};
use wcp_trace::lattice::LatticeExplorer;
use wcp_trace::render::{self, DiagramOptions};
use wcp_trace::{Computation, Wcp};

use crate::args::Args;
use crate::CliError;

fn load(path: &str) -> Result<Computation, CliError> {
    let data = fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let computation = Computation::from_json(&Json::parse(&data)?)?;
    computation
        .validate()
        .map_err(|e| CliError::runtime(format!("{path} is not a valid computation: {e}")))?;
    Ok(computation)
}

fn parse_scope(args: &Args, computation: &Computation) -> Result<Wcp, CliError> {
    match args.get("scope") {
        None => Ok(Wcp::over_all(computation)),
        Some(spec) => {
            let mut ids = Vec::new();
            for part in spec.split(',') {
                let idx: u32 = part
                    .trim()
                    .parse()
                    .map_err(|_| CliError::usage(format!("--scope: bad process id `{part}`")))?;
                if idx as usize >= computation.process_count() {
                    return Err(CliError::usage(format!(
                        "--scope: process {idx} out of range (N = {})",
                        computation.process_count()
                    )));
                }
                ids.push(ProcessId::new(idx));
            }
            if ids.is_empty() {
                return Err(CliError::usage("--scope: empty"));
            }
            Ok(Wcp::over(ids))
        }
    }
}

/// `wcp generate` — write a seeded random workload to a JSON file.
pub fn generate_cmd(args: &Args) -> Result<String, CliError> {
    let processes: usize = args.require("processes")?;
    let events: usize = args.require("events")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let density: f64 = args.get_or("density", 0.1)?;
    let out: String = args.require("o")?;

    let mut cfg = GeneratorConfig::new(processes, events)
        .with_seed(seed)
        .with_predicate_density(density);
    if let Some(f) = args.get("plant") {
        let f: f64 = f
            .parse()
            .map_err(|_| CliError::usage("--plant: expected a fraction"))?;
        cfg = cfg.with_plant(f);
    }
    if let Some(topo) = args.get("topology") {
        cfg = cfg.with_topology(parse_topology(topo)?);
    }
    let generated = generate_workload(&cfg);
    fs::write(&out, generated.computation.to_json().pretty())?;
    let mut msg = format!("wrote {out}: {}", generated.computation.stats());
    if let Some(cut) = generated.planted {
        msg.push_str(&format!("\nplanted satisfying cut at {cut}"));
    }
    Ok(msg)
}

fn parse_topology(spec: &str) -> Result<Topology, CliError> {
    if spec == "uniform" {
        return Ok(Topology::Uniform);
    }
    if spec == "ring" {
        return Ok(Topology::Ring);
    }
    if let Some(k) = spec.strip_prefix("cs:") {
        let servers = k
            .parse()
            .map_err(|_| CliError::usage("--topology cs:K needs a count"))?;
        return Ok(Topology::ClientServer { servers });
    }
    if let Some(k) = spec.strip_prefix("nb:") {
        let degree = k
            .parse()
            .map_err(|_| CliError::usage("--topology nb:K needs a degree"))?;
        return Ok(Topology::Neighbors { degree });
    }
    Err(CliError::usage(format!("unknown topology `{spec}`")))
}

/// `wcp info` — validate and summarize a trace file.
pub fn info(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let stats = computation.stats();
    let mut out = format!("{path}: valid\n{stats}\n");
    let annotated = computation.annotate();
    for (p, _) in computation.iter() {
        out.push_str(&format!(
            "  {p}: {} events, {} true intervals\n",
            computation.process(p).event_count(),
            annotated.true_intervals(p).len()
        ));
    }
    Ok(out)
}

/// `wcp generate` entry point.
pub fn generate(raw: &[String]) -> Result<String, CliError> {
    generate_cmd(&Args::parse(raw)?)
}

/// Parses a `parallel` / `parallel:T` spec into a worker count.
fn parse_parallel_threads(spec: &str) -> Result<Option<usize>, CliError> {
    if spec == "parallel" {
        return Ok(Some(1));
    }
    match spec.strip_prefix("parallel:") {
        Some(t) => {
            let threads: usize =
                t.parse().ok().filter(|&t| t >= 1).ok_or_else(|| {
                    CliError::usage("--algorithm parallel:T needs a thread count")
                })?;
            Ok(Some(threads))
        }
        None => Ok(None),
    }
}

fn parse_detector(spec: &str) -> Result<Box<dyn Detector>, CliError> {
    Ok(match spec {
        "token" => Box::new(TokenDetector::new()),
        "checker" => Box::new(CentralizedChecker::new()),
        "direct" => Box::new(DirectDependenceDetector::new()),
        "lattice" => Box::new(LatticeDetector::new()),
        other => {
            if let Some(g) = other.strip_prefix("multi:") {
                let groups: usize = g
                    .parse()
                    .map_err(|_| CliError::usage("--algorithm multi:G needs a group count"))?;
                Box::new(MultiTokenDetector::new(groups))
            } else if let Some(threads) = parse_parallel_threads(other)? {
                Box::new(ParallelDetector::new().with_threads(threads))
            } else {
                return Err(CliError::usage(format!(
                    "unknown algorithm `{other}` \
                     (token|checker|direct|lattice|multi:G|parallel[:T])"
                )));
            }
        }
    })
}

/// Like [`parse_detector`], but attaches `recorder` so the run streams
/// [`wcp_obs::TraceEvent`]s.
fn parse_recorded_detector(
    spec: &str,
    recorder: Arc<dyn Recorder>,
) -> Result<Box<dyn Detector>, CliError> {
    Ok(match spec {
        "token" => Box::new(TokenDetector::new().with_recorder(recorder)),
        "checker" => Box::new(CentralizedChecker::new().with_recorder(recorder)),
        "direct" => Box::new(DirectDependenceDetector::new().with_recorder(recorder)),
        "lattice" => Box::new(LatticeDetector::new().with_recorder(recorder)),
        other => {
            if let Some(g) = other.strip_prefix("multi:") {
                let groups: usize = g
                    .parse()
                    .map_err(|_| CliError::usage("--algorithm multi:G needs a group count"))?;
                Box::new(MultiTokenDetector::new(groups).with_recorder(recorder))
            } else if let Some(threads) = parse_parallel_threads(other)? {
                Box::new(
                    ParallelDetector::new()
                        .with_threads(threads)
                        .with_recorder(recorder),
                )
            } else {
                return Err(CliError::usage(format!(
                    "unknown algorithm `{other}` \
                     (token|checker|direct|lattice|multi:G|parallel[:T])"
                )));
            }
        }
    })
}

fn describe(report: &DetectionReport, json: bool) -> Result<String, CliError> {
    if json {
        return Ok(report.to_json().pretty());
    }
    let mut out = String::new();
    match &report.detection {
        Detection::Detected { cut } => out.push_str(&format!("DETECTED at cut {cut}\n")),
        Detection::Undetected => {
            out.push_str("UNDETECTED: the predicate never held on a consistent cut\n")
        }
    }
    out.push_str(&format!("cost: {}\n", report.metrics));
    Ok(out)
}

/// `wcp detect` — run a WCP detector on a trace file.
pub fn detect(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let detector = parse_detector(args.get("algorithm").unwrap_or("token"))?;

    let annotated = computation.annotate();
    let report = detector.detect(&annotated, &wcp);
    let mut out = format!("algorithm: {}\npredicate: {wcp}\n", detector.name());
    out.push_str(&describe(&report, args.switch("json"))?);
    if let Some(slice_path) = args.get("slice") {
        if let Detection::Detected { cut } = &report.detection {
            // Scope-only cuts (zero entries elsewhere) are completed to the
            // least consistent extension before slicing.
            let full = if cut.is_complete() {
                cut.clone()
            } else {
                let states: Vec<_> = wcp
                    .scope()
                    .iter()
                    .map(|&p| {
                        cut.get(p)
                            .filter(|&k| k >= 1)
                            .map(|k| wcp_clocks::StateId::new(p, k))
                            .ok_or_else(|| {
                                CliError::runtime(format!(
                                    "detected cut {cut} selects no state for scope process {p}; \
                                     cannot slice"
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, CliError>>()?;
                annotated
                    .least_consistent_extension(&states)
                    .ok_or_else(|| CliError::runtime("no consistent extension for the cut"))?
            };
            let sliced = computation.truncate_at(&full);
            fs::write(slice_path, sliced.to_json().pretty())?;
            out.push_str(&format!(
                "sliced trace (prefix at {full}) written to {slice_path}\n"
            ));
        } else {
            out.push_str("no detection: nothing to slice\n");
        }
    }
    if args.switch("diagram") {
        let options = match &report.detection {
            Detection::Detected { cut } => DiagramOptions::with_cut(cut.clone()),
            Detection::Undetected => DiagramOptions {
                cut: None,
                show_predicates: true,
            },
        };
        out.push('\n');
        out.push_str(&render::ascii(&computation, &options));
    }
    Ok(out)
}

/// `wcp trace` — run an offline detector with a recorder attached and
/// write the event stream as JSONL.
pub fn trace(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let events_path: String = args.require("events")?;
    let capacity: usize = args.get_or("capacity", 1 << 20)?;

    let ring = Arc::new(RingRecorder::new(capacity));
    let detector = parse_recorded_detector(args.get("algorithm").unwrap_or("token"), ring.clone())?;
    let annotated = computation.annotate();
    let report = detector.detect(&annotated, &wcp);

    let events = ring.events();
    fs::write(&events_path, jsonl::to_string(&events))?;
    let mut out = format!(
        "algorithm: {}\npredicate: {wcp}\nwrote {} events to {events_path}",
        detector.name(),
        events.len()
    );
    if ring.dropped() > 0 {
        out.push_str(&format!(
            " ({} older events dropped; raise --capacity)",
            ring.dropped()
        ));
    }
    out.push('\n');
    out.push_str(&describe(&report, args.switch("json"))?);
    Ok(out)
}

/// `wcp stats` — run the paper's two online algorithms (Section 3 token,
/// Section 4 direct dependence) over the simulated network with recorders
/// attached and print their [`RunReport`]s: per-monitor token-hop counts,
/// queue-delay histograms and the candidate-elimination timeline.
pub fn stats(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let capacity: usize = args.get_or("capacity", 1 << 20)?;

    let mut out = String::new();
    let mut section = |title: &str, run: &dyn Fn(Arc<RingRecorder>) -> u64| {
        let ring = Arc::new(RingRecorder::new(capacity));
        let latency = run(ring.clone());
        out.push_str(&format!("== {title} (sim seed {seed}) ==\n"));
        if ring.dropped() > 0 {
            out.push_str(&format!(
                "({} oldest events dropped; raise --capacity)\n",
                ring.dropped()
            ));
        }
        out.push_str(&RunReport::from_events(&ring.events()).render());
        out.push_str(&format!("detection latency: {latency} ticks\n\n"));
    };
    section("section 3: vector-clock token algorithm", &|ring| {
        run_vc_token_recorded(&computation, &wcp, SimConfig::seeded(seed), ring)
            .outcome
            .time
            .0
    });
    section("section 4: direct-dependence algorithm", &|ring| {
        run_direct_recorded(&computation, &wcp, SimConfig::seeded(seed), false, ring)
            .outcome
            .time
            .0
    });
    // Wire section: the same token run over the in-process loopback
    // transport, surfacing the transport-layer counters the simulator has
    // no notion of — batch coalescing, ready-queue watermark, buffer-pool
    // reuse.
    let net = run_vc_token_net_recorded(
        &computation,
        &wcp,
        NetConfig::loopback(),
        Arc::new(NullRecorder),
    )
    .net;
    out.push_str("== wire transport (loopback, batched writes) ==\n");
    out.push_str(&format!(
        "frames        : {} sent ({} B) / {} received ({} B)\n",
        net.frames_sent, net.bytes_sent, net.frames_received, net.bytes_received
    ));
    out.push_str(&format!(
        "recovery      : {} retransmits, {} reconnects, {} dups dropped, {} reordered\n",
        net.retransmits, net.reconnects, net.duplicates_dropped, net.reordered
    ));
    out.push_str(&format!(
        "batch flushes : {} (max batch {} B)\n",
        net.batch_flushes, net.max_batch_bytes
    ));
    out.push_str(&format!("ready depth   : ≤ {}\n", net.max_ready_depth));
    out.push_str(&format!(
        "buffer pool   : {} allocs / {} reuses\n",
        net.pool_allocs, net.pool_reuses
    ));
    out.push_str(&format!(
        "acks          : {} out / {} in\n",
        net.acks_sent, net.acks_received
    ));
    // Wire-v2 compression: actual bytes against what the same frames
    // would have cost under v1 full-width clock bodies (paper units are
    // unaffected — DetectionMetrics always counts `wire_size()`).
    let ratio = net.bytes_sent as f64 / net.wire_bytes_v1_equiv.max(1) as f64;
    out.push_str(&format!(
        "wire v2       : {} B sent vs {} B v1-equiv ({:.2}× ratio)\n",
        net.bytes_sent, net.wire_bytes_v1_equiv, ratio
    ));
    out.push_str(&format!(
        "clock chains  : {} keyframes / {} deltas\n",
        net.keyframes_sent, net.delta_frames_sent
    ));
    // Multi-tenant section: the same trace served to a handful of
    // sessions with diverse scopes through the shared session layer,
    // surfacing the per-session counters the single-predicate runs
    // above have no notion of.
    let n = computation.process_count();
    let sessions = 2 * n;
    let multi = run_multi_net(
        &computation,
        &derived_predicates(n, sessions),
        NetConfig::loopback(),
    );
    out.push_str(&format!(
        "\n== multi-tenant session layer (loopback, {sessions} sessions) ==\n"
    ));
    out.push_str(&format!(
        "sessions      : {} active at end of run\n",
        multi.report.stats.sessions_active
    ));
    out.push_str(&format!(
        "routing       : {} routed events, {} detections\n",
        multi.report.stats.routed_events, multi.report.stats.detections
    ));
    out.push_str(&format!(
        "shared store  : {} B of snapshots ({:.1} B/session)\n",
        multi.report.stored_bytes,
        multi.report.stored_bytes as f64 / sessions as f64
    ));
    Ok(out.trim_end().to_string() + "\n")
}

fn parse_channel_term(spec: &str) -> Result<ChannelTerm, CliError> {
    let usage = || {
        CliError::usage(format!(
            "--channel: `{spec}` (want FROM-TO:empty|atmost:K|atleast:K)"
        ))
    };
    let (endpoints, predicate) = spec.split_once(':').ok_or_else(usage)?;
    let (from, to) = endpoints.split_once('-').ok_or_else(usage)?;
    let from: u32 = from.parse().map_err(|_| usage())?;
    let to: u32 = to.parse().map_err(|_| usage())?;
    let predicate = match predicate {
        "empty" => ChannelPredicate::Empty,
        other => {
            if let Some(k) = other.strip_prefix("atmost:") {
                ChannelPredicate::AtMost(k.parse().map_err(|_| usage())?)
            } else if let Some(k) = other.strip_prefix("atleast:") {
                ChannelPredicate::AtLeast(k.parse().map_err(|_| usage())?)
            } else {
                return Err(usage());
            }
        }
    };
    Ok(ChannelTerm {
        channel: ChannelId::new(ProcessId::new(from), ProcessId::new(to)),
        predicate,
    })
}

/// `wcp gcp` — detect a generalized conjunctive predicate with channel
/// terms.
pub fn gcp(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let mut terms = Vec::new();
    for spec in args.get_all("channel") {
        terms.push(parse_channel_term(spec)?);
    }
    for term in &terms {
        if !wcp.contains(term.channel.from) || !wcp.contains(term.channel.to) {
            return Err(CliError::usage(format!(
                "--channel {}: endpoints must be inside the scope",
                term.channel
            )));
        }
    }
    let gcp = Gcp::new(wcp, terms);
    let annotated = computation.annotate();
    let report = GcpChecker::new().detect(&annotated, &gcp);
    let mut out = format!("predicate: {gcp}\n");
    out.push_str(&describe(&report, args.switch("json"))?);
    Ok(out)
}

/// `wcp render` — print a space-time diagram (text or Graphviz DOT).
pub fn render(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    // `--scope` is advertised in USAGE; out-of-range ids must be a proper
    // usage error, not silently ignored.
    parse_scope(&args, &computation)?;
    let options = DiagramOptions {
        cut: None,
        show_predicates: true,
    };
    if args.switch("dot") {
        Ok(render::dot(&computation, &options))
    } else {
        Ok(render::ascii(&computation, &options))
    }
}

/// `wcp lattice` — explore the global-state lattice of a trace.
pub fn lattice(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let max_states: usize = args.get_or("max-states", 1_000_000)?;
    let explorer = LatticeExplorer::new(&computation);
    let mut out = String::new();
    match explorer.count_states(max_states) {
        Ok(count) => out.push_str(&format!("consistent global states: {count}\n")),
        Err(e) => out.push_str(&format!("consistent global states: {e}\n")),
    }
    match explorer.first_satisfying_counted(&wcp, max_states) {
        Ok((Some(cut), visited)) => out.push_str(&format!(
            "first cut satisfying {wcp}: {cut} (after visiting {visited} states)\n"
        )),
        Ok((None, visited)) => out.push_str(&format!(
            "no consistent cut satisfies {wcp} (visited {visited} states)\n"
        )),
        Err(e) => out.push_str(&format!("search truncated: {e}\n")),
    }
    Ok(out)
}

fn parse_fault_config(args: &Args) -> Result<Option<FaultConfig>, CliError> {
    let faults = FaultConfig::seeded(args.get_or("fault-seed", 0)?)
        .with_drop(args.get_or("drop", 0.0)?)
        .with_delay(args.get_or("delay", 0.0)?)
        .with_duplicate(args.get_or("duplicate", 0.0)?)
        .with_reorder(args.get_or("reorder", 0.0)?)
        .with_reset(args.get_or("reset", 0.0)?);
    for (name, p) in [
        ("drop", faults.drop),
        ("delay", faults.delay),
        ("duplicate", faults.duplicate),
        ("reorder", faults.reorder),
        ("reset", faults.reset),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CliError::usage(format!(
                "--{name}: probability {p} outside [0, 1]"
            )));
        }
    }
    Ok((!faults.is_quiet()).then_some(faults))
}

/// `wcp net-demo` — run a detection over real transport (in-process peers
/// over TCP localhost or loopback channels, optionally with injected
/// faults) and cross-check the verdict against the simulator.
pub fn net_demo(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let algorithm = args.get("algorithm").unwrap_or("token");
    let transport = match args.get("transport").unwrap_or("tcp") {
        "tcp" => TransportKind::Tcp,
        "loopback" => TransportKind::Loopback,
        other => {
            return Err(CliError::usage(format!(
                "--transport: `{other}` (want tcp|loopback)"
            )))
        }
    };
    let mut config = NetConfig {
        transport,
        ..NetConfig::default()
    }
    .with_deadline(Duration::from_secs(args.get_or("deadline", 60)?));
    if let Some(faults) = parse_fault_config(&args)? {
        config = config.with_faults(faults);
    }

    let (net, sim): (NetReport, DetectionReport) = match algorithm {
        "token" => (
            run_vc_token_net(&computation, &wcp, config),
            run_vc_token(&computation, &wcp, SimConfig::seeded(0)).report,
        ),
        "direct" => (
            run_direct_net(&computation, &wcp, false, config),
            run_direct(&computation, &wcp, SimConfig::seeded(0), false).report,
        ),
        other => {
            return Err(CliError::usage(format!(
                "--algorithm: `{other}` (want token|direct)"
            )))
        }
    };

    let transport_name = match transport {
        TransportKind::Tcp => "tcp (localhost sockets)",
        TransportKind::Loopback => "loopback (in-memory)",
    };
    let mut out = format!("algorithm: {algorithm} over {transport_name}\npredicate: {wcp}\n");
    if let Some(faults) = config.faults {
        out.push_str(&format!(
            "faults: drop {} delay {} duplicate {} reorder {} reset {} (seed {})\n",
            faults.drop, faults.delay, faults.duplicate, faults.reorder, faults.reset, faults.seed
        ));
    }
    out.push_str(&describe(&net.report, args.switch("json"))?);
    out.push_str(&format!("wire: {}\n", net.net));
    if net.report.detection == sim.detection {
        out.push_str("simulator cross-check: identical verdict\n");
    } else {
        return Err(CliError::runtime(format!(
            "net verdict {:?} disagrees with simulator verdict {:?}",
            net.report.detection, sim.detection
        )));
    }
    Ok(out)
}

/// `k` deterministic predicates with diverse scopes over `n` processes:
/// predicate `j` spans `1 + (j mod n)` processes starting at
/// `3·j mod n` — singletons, strided bands and full-width scopes all
/// appear, so the demo exercises routing fan-out, not one shared scope.
fn derived_predicates(n: usize, k: usize) -> Vec<Wcp> {
    (0..k)
        .map(|j| {
            let width = 1 + (j % n);
            Wcp::over((0..width).map(|i| ProcessId::new(((j * 3 + i) % n) as u32)))
        })
        .collect()
}

/// One row of a per-predicate verdict table.
fn outcome_row(outcome: &PredicateOutcome) -> String {
    let verdict = match outcome.verdict.cut() {
        Some(cut) => format!(
            "DETECTED at [{}]",
            cut.iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        None => "impossible".to_string(),
    };
    format!("  {:>3} | {} | {verdict}\n", outcome.id, outcome.wcp)
}

/// `wcp multi-demo` — run `--predicates K` detection sessions with
/// diverse scopes over one shared event stream through the socket-backed
/// multi-tenant service ([`run_multi_net`]), print the per-predicate
/// verdict table and session counters, and cross-check every verdict and
/// every [`DetectionMetrics`](wcp_detect::DetectionMetrics) against the
/// simulator runner — Theorem 3.2 says transport must not matter.
/// `--pump-threads T` fans deliveries out over `T` sharded pump workers
/// (bit-identical to the serial pump either way).
pub fn multi_demo(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let n = computation.process_count();
    let k: usize = args.get_or("predicates", 8)?;
    if k == 0 {
        return Err(CliError::usage("multi-demo needs --predicates ≥ 1"));
    }
    let (transport, transport_name) = parse_transport(&args)?;
    let mut config = NetConfig {
        transport,
        ..NetConfig::default()
    }
    .with_deadline(Duration::from_secs(args.get_or("deadline", 60)?))
    .with_pump_threads(args.get_or("pump-threads", 1)?);
    if let Some(faults) = parse_fault_config(&args)? {
        config = config.with_faults(faults);
    }
    let predicates = derived_predicates(n, k);
    let net = run_multi_net(&computation, &predicates, config);
    let sim = run_multi_sim(&computation, &predicates, args.get_or("seed", 0)?);

    let mut out =
        format!("multi-tenant demo over {transport_name}\nprocesses: {n}, sessions: {k}\n");
    if let Some(faults) = config.faults {
        out.push_str(&format!(
            "faults: drop {} delay {} duplicate {} reorder {} reset {} (seed {})\n",
            faults.drop, faults.delay, faults.duplicate, faults.reorder, faults.reset, faults.seed
        ));
    }
    out.push_str("   id | scope | verdict\n");
    for outcome in &net.report.outcomes {
        out.push_str(&outcome_row(outcome));
    }
    let stats = &net.report.stats;
    out.push_str(&format!(
        "sessions: {} active, {} routed events, {} detections\n",
        stats.sessions_active, stats.routed_events, stats.detections
    ));
    out.push_str(&format!(
        "store: {} B shared snapshots ({:.1} B/session)\n",
        net.report.stored_bytes,
        net.report.stored_bytes as f64 / k as f64
    ));
    out.push_str(&format!("wire: {}\n", net.net));
    for (socket, simulated) in net.report.outcomes.iter().zip(&sim.outcomes) {
        if socket.verdict != simulated.verdict {
            return Err(CliError::runtime(format!(
                "session {}: socket verdict {:?} disagrees with simulator verdict {:?}",
                socket.id, socket.verdict, simulated.verdict
            )));
        }
        if socket.metrics != simulated.metrics {
            return Err(CliError::runtime(format!(
                "session {}: socket metrics diverge from the simulator's",
                socket.id
            )));
        }
    }
    out.push_str("simulator cross-check: identical verdicts and metrics\n");
    Ok(out)
}

/// Parses `--peer I --addrs HOST:PORT,...` against a session of `n`
/// peers (shared by `serve`, `top` and `obs-report`).
fn parse_peer_addrs(args: &Args, n: usize) -> Result<(usize, Vec<SocketAddr>), CliError> {
    let peer: usize = args.require("peer")?;
    let addrs_raw = args
        .get("addrs")
        .ok_or_else(|| CliError::usage("missing --addrs HOST:PORT,HOST:PORT,..."))?;
    let addrs = addrs_raw
        .split(',')
        .map(|a| {
            a.trim()
                .parse::<SocketAddr>()
                .map_err(|_| CliError::usage(format!("--addrs: bad address `{a}`")))
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    if addrs.len() != n {
        return Err(CliError::usage(format!(
            "--addrs: {} addresses (this session needs {n})",
            addrs.len(),
        )));
    }
    if peer >= n {
        return Err(CliError::usage(format!(
            "--peer: {peer} out of range (this session has {n} peers)"
        )));
    }
    Ok((peer, addrs))
}

/// `wcp serve` — run one peer of a vector-clock token detection as a
/// standalone process, connected to the other peers over TCP. Every peer
/// must be started with the same trace, scope and address list. With
/// `--telemetry` the peer also runs the sidecar telemetry channel: it
/// streams its ring deltas to peer 0, and peer 0 (the collector) prints
/// the merged cross-peer summary. With `--multi` the peer instead joins
/// a multi-tenant session-layer deployment (see [`serve_multi`]).
pub fn serve(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    if args.switch("multi") {
        return serve_multi(&args);
    }
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;
    let (peer, addrs) = parse_peer_addrs(&args, wcp.n())?;
    let config = NetConfig::tcp().with_deadline(Duration::from_secs(args.get_or("deadline", 60)?));
    let telemetry = args.switch("telemetry").then(TelemetryCollector::shared);
    let report = match &telemetry {
        Some(collector) => serve_vc_peer_observed(
            &computation,
            &wcp,
            peer,
            &addrs,
            config,
            Arc::new(NullRecorder),
            collector.clone(),
        ),
        None => serve_vc_peer(
            &computation,
            &wcp,
            peer,
            &addrs,
            config,
            Arc::new(NullRecorder),
        ),
    };
    let mut out = format!(
        "peer {peer}/{} listening on {}\npredicate: {wcp}\n",
        wcp.n(),
        addrs[peer]
    );
    match &report.detection {
        Detection::Detected { cut } => out.push_str(&format!("DETECTED at cut {cut}\n")),
        Detection::Undetected => {
            out.push_str("UNDETECTED: the predicate never held on a consistent cut\n")
        }
    }
    out.push_str(&format!("wire: {}\n", report.net));
    if let Some(collector) = telemetry {
        out.push_str(&format!(
            "telemetry: {} events from {} sources ({} malformed deltas)\n",
            collector.events_collected(),
            collector.source_stats().len(),
            collector.malformed()
        ));
    }
    Ok(out)
}

/// `wcp serve --multi` — one peer of a standalone multi-tenant
/// deployment: application peers `0..N` replay the trace over TCP, peer
/// `N` hosts the shared session-layer service serving `--predicates K`
/// derived predicates, and peer 0 doubles as the verdict-collecting
/// controller. `--addrs` therefore lists `N + 1` addresses (one per
/// process, then the service peer's), and every peer must be started
/// with the same trace, predicate count and address list.
fn serve_multi(args: &Args) -> Result<String, CliError> {
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let n = computation.process_count();
    let k: usize = args.get_or("predicates", 8)?;
    if k == 0 {
        return Err(CliError::usage("serve --multi needs --predicates ≥ 1"));
    }
    let (peer, addrs) = parse_peer_addrs(args, n + 1)?;
    let config = NetConfig::tcp()
        .with_deadline(Duration::from_secs(args.get_or("deadline", 60)?))
        .with_pump_threads(args.get_or("pump-threads", 1)?);
    let registrations: Vec<(u64, Wcp)> = derived_predicates(n, k)
        .into_iter()
        .enumerate()
        .map(|(i, w)| (i as u64, w))
        .collect();
    let report = serve_multi_peer(
        &computation,
        &registrations,
        peer,
        &addrs,
        config,
        Arc::new(NullRecorder),
    );
    let role = if peer == n { "service" } else { "app" };
    let mut out = format!(
        "peer {peer}/{} ({role}) listening on {}\nsessions: {k} over one shared {n}-process stream\n",
        n + 1,
        addrs[peer]
    );
    if !report.outcomes.is_empty() {
        out.push_str("   id | scope | verdict\n");
        for outcome in &report.outcomes {
            out.push_str(&outcome_row(outcome));
        }
    }
    if !report.verdicts.is_empty() {
        let detected = report.verdicts.values().filter(|v| v.is_some()).count();
        out.push_str(&format!(
            "controller: {} verdicts collected ({detected} detected)\n",
            report.verdicts.len()
        ));
    }
    out.push_str(&format!("wire: {}\n", report.net));
    Ok(out)
}

fn parse_transport(args: &Args) -> Result<(TransportKind, &'static str), CliError> {
    match args.get("transport").unwrap_or("loopback") {
        "tcp" => Ok((TransportKind::Tcp, "tcp (localhost sockets)")),
        "loopback" => Ok((TransportKind::Loopback, "loopback (in-memory)")),
        other => Err(CliError::usage(format!(
            "--transport: `{other}` (want tcp|loopback)"
        ))),
    }
}

/// Spawns the observed detection for `top`/`obs-report` on a worker
/// thread and returns `(title, join handle)`. With `--peer`/`--addrs`
/// the run is one standalone TCP peer of a `wcp serve` session;
/// otherwise all peers run in-process over `--transport`.
fn spawn_observed(
    args: &Args,
    path: &str,
    computation: &Computation,
    wcp: &Wcp,
    collector: &Arc<TelemetryCollector>,
    done: &Arc<AtomicBool>,
) -> Result<(String, std::thread::JoinHandle<Detection>), CliError> {
    let deadline = Duration::from_secs(args.get_or("deadline", 60)?);
    let computation = computation.clone();
    let wcp = wcp.clone();
    let collector = collector.clone();
    let done = done.clone();
    if args.get("peer").is_some() {
        let (peer, addrs) = parse_peer_addrs(args, wcp.n())?;
        let title = format!("{path} — tcp peer {peer}/{}", wcp.n());
        let handle = std::thread::spawn(move || {
            let report = serve_vc_peer_observed(
                &computation,
                &wcp,
                peer,
                &addrs,
                NetConfig::tcp().with_deadline(deadline),
                Arc::new(NullRecorder),
                collector,
            );
            done.store(true, Ordering::Relaxed);
            report.detection
        });
        Ok((title, handle))
    } else {
        let (transport, name) = parse_transport(args)?;
        let title = format!("{path} — {name}");
        let config = NetConfig {
            transport,
            ..NetConfig::default()
        }
        .with_deadline(deadline);
        let handle = std::thread::spawn(move || {
            let report = run_vc_token_net_observed(
                &computation,
                &wcp,
                config,
                Arc::new(NullRecorder),
                collector,
            );
            done.store(true, Ordering::Relaxed);
            report.report.detection
        });
        Ok((title, handle))
    }
}

/// `wcp top` — live telemetry dashboard: runs a vector-clock token
/// detection with the sidecar telemetry plane on and refreshes the
/// collector's merged view every `--interval-ms` until the run finishes
/// (or `--frames` refreshes, whichever is first). In-process by default
/// (`--transport tcp|loopback`); with `--peer I --addrs ...` it joins a
/// real `wcp serve` session as one standalone peer — run it as peer 0 to
/// watch every peer's telemetry converge on the collector.
pub fn top(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    top_with_sink(&args, &mut |frame| {
        // ANSI clear + home so successive frames repaint in place.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
    })
}

/// [`top`] with the intermediate frames routed to `sink` (tests collect
/// them instead of painting a terminal); the returned string is the final
/// frame plus a footer.
fn top_with_sink(args: &Args, sink: &mut dyn FnMut(&str)) -> Result<String, CliError> {
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(args, &computation)?;
    let interval = Duration::from_millis(args.get_or("interval-ms", 200)?);
    let max_frames: usize = args.get_or("frames", 100)?;

    let collector = TelemetryCollector::shared();
    let done = Arc::new(AtomicBool::new(false));
    let (title, handle) = spawn_observed(args, path, &computation, &wcp, &collector, &done)?;

    let mut frames = 0usize;
    while frames < max_frames && !done.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        sink(&collector.dashboard(&title));
        frames += 1;
    }
    handle
        .join()
        .map_err(|_| CliError::runtime("detection thread panicked (peer deadline exceeded?)"))?;
    let mut out = collector.dashboard(&title);
    out.push_str(&format!(
        "{} refreshes, {} events collected, {} malformed deltas\n",
        frames + 1,
        collector.events_collected(),
        collector.malformed()
    ));
    Ok(out)
}

/// `wcp obs-report` — run a detection with the telemetry plane on, then
/// print the collector's causally merged global timeline as the full
/// [`RunReport`], the per-source wire counters, and the paper-bound audit
/// (Section 3.4 message/bit/latency limits). `--events OUT.jsonl` also
/// exports the merged timeline for replay tooling. Same run modes as
/// `wcp top`: in-process by default, `--peer I --addrs ...` for a real
/// TCP serve session.
pub fn obs_report(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let path = args.require_positional(0, "FILE")?;
    let computation = load(path)?;
    let wcp = parse_scope(&args, &computation)?;

    let collector = TelemetryCollector::shared();
    let done = Arc::new(AtomicBool::new(false));
    let (title, handle) = spawn_observed(&args, path, &computation, &wcp, &collector, &done)?;
    let detection = handle
        .join()
        .map_err(|_| CliError::runtime("detection thread panicked (peer deadline exceeded?)"))?;

    let merged = collector.merged();
    let sources = collector.source_stats();
    let mut out = format!("telemetry report — {title}\npredicate: {wcp}\n");
    match &detection {
        Detection::Detected { cut } => out.push_str(&format!("DETECTED at cut {cut}\n")),
        Detection::Undetected => {
            out.push_str("UNDETECTED: the predicate never held on a consistent cut\n")
        }
    }
    out.push_str(&format!(
        "merged timeline: {} events from {} sources ({} malformed deltas)\n",
        merged.len(),
        sources.len(),
        collector.malformed()
    ));
    for (src, stats, events, deltas) in &sources {
        out.push_str(&format!(
            "  S{src}: {deltas} deltas, {events} events | {stats}\n"
        ));
    }
    out.push('\n');
    out.push_str(&RunReport::from_events(&merged).render());
    out.push('\n');
    let m1 = computation.max_events_per_process() as u64 + 1;
    out.push_str(&audit_bounds(wcp.n(), m1, &merged, &BoundLimits::exact()).render());
    if let Some(events_path) = args.get("events") {
        fs::write(events_path, jsonl::to_string(&merged))?;
        out.push_str(&format!(
            "wrote {} merged events to {events_path}\n",
            merged.len()
        ));
    }
    Ok(out)
}

/// `wcp fuzz` — seeded differential conformance campaign.
///
/// Draws `--cases` random cases from `--seed`, runs every detector family
/// on each, and cross-checks verdicts and replayed metrics against the
/// lattice oracle. Divergences exit nonzero, with repro JSON suitable for
/// `tests/corpus/` in the error output; `--shrink` first reduces each
/// repro to its minimal form. `--no-net` skips the (slower) real-socket
/// loopback stacks; `--net-batch` forces coalesced writes on every net
/// run (by default each case draws batched or per-frame at random);
/// `--wire-v2` likewise forces the delta-compressed wire format (each
/// case draws its wire version at random otherwise); `--multi` forces
/// the socket-backed multi-tenant session leg on every case (the
/// offline session cross-check runs on every case regardless);
/// `--pump-parallel` forces the sharded parallel-pump cross-check on
/// every case (each case otherwise draws that bit at random);
/// `--parallel-detect` forces the work-optimal detector's multi-thread
/// bit-identity leg on every case (also drawn per case at random);
/// `--audit-bounds` additionally audits every case's merged telemetry
/// timeline against the paper's §3.4 message/bit/latency bounds.
pub fn fuzz(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cases: usize = args.get_or("cases", 50)?;
    if cases == 0 {
        return Err(CliError::usage("fuzz needs --cases ≥ 1"));
    }
    let mut config = wcp_fuzz::CampaignConfig::new(seed, cases);
    config.shrink = args.switch("shrink");
    config.check.include_net = !args.switch("no-net");
    config.check.force_net_batch = args.switch("net-batch");
    config.check.force_wire_v2 = args.switch("wire-v2");
    config.check.force_multi = args.switch("multi");
    config.check.force_pump_parallel = args.switch("pump-parallel");
    config.check.force_parallel_detect = args.switch("parallel-detect");
    config.check.audit_bounds = args.switch("audit-bounds");
    let report = wcp_fuzz::run_campaign(&config);
    let mut out = report.summary_table();
    if report.bugs.is_empty() {
        out.push_str("\nall detector families agree: no divergences\n");
        return Ok(out);
    }
    out.push_str("\nrepro JSON (pin under tests/corpus/ once fixed):\n");
    for bug in &report.bugs {
        out.push_str(&bug.repro_json().to_string_compact());
        out.push('\n');
    }
    Err(CliError::runtime(out))
}

/// `wcp bound` — run the Theorem 5.1 adversary game.
pub fn bound(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let n: usize = args.require("n")?;
    let m: u64 = args.require("m")?;
    if n < 2 || m < 1 {
        return Err(CliError::usage("bound needs --n ≥ 2 and --m ≥ 1"));
    }
    let stats = run_optimal_algorithm(n, m);
    Ok(format!(
        "adversary game n={n} m={m}: forced {} deletions in {} comparison rounds (bound nm−n = {})",
        stats.deletions, stats.comparisons, stats.bound
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn tmpfile(name: &str) -> String {
        let dir = std::env::temp_dir().join("wcp-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn generated_trace(name: &str) -> String {
        let path = tmpfile(name);
        let out = generate(&argv(&[
            "--processes",
            "4",
            "--events",
            "8",
            "--seed",
            "5",
            "--plant",
            "0.7",
            "-o",
            &path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        assert!(out.contains("planted"));
        path
    }

    #[test]
    fn generate_info_roundtrip() {
        let path = generated_trace("roundtrip.json");
        let out = info(&argv(&[&path])).unwrap();
        assert!(out.contains("valid"));
        assert!(out.contains("N=4"));
        assert!(out.contains("P3:"));
    }

    #[test]
    fn detect_all_algorithms_agree() {
        let path = generated_trace("detect.json");
        let mut cuts = Vec::new();
        for alg in [
            "token",
            "checker",
            "direct",
            "lattice",
            "multi:2",
            "parallel",
            "parallel:4",
        ] {
            let out = detect(&argv(&[&path, "--algorithm", alg])).unwrap();
            assert!(out.contains("DETECTED"), "{alg}: {out}");
            let cut_line = out
                .lines()
                .find(|l| l.contains("DETECTED"))
                .unwrap()
                .to_string();
            cuts.push((alg, cut_line));
        }
        // token / checker / multi / parallel report identical scope cuts.
        assert_eq!(cuts[0].1, cuts[1].1);
        assert_eq!(cuts[0].1, cuts[4].1);
        assert_eq!(cuts[0].1, cuts[5].1);
        assert_eq!(cuts[0].1, cuts[6].1);
    }

    #[test]
    fn detect_with_diagram_and_json() {
        let path = generated_trace("diagram.json");
        let out = detect(&argv(&[&path, "--diagram"])).unwrap();
        assert!(out.contains('┊'), "diagram with cut markers: {out}");
        let out = detect(&argv(&[&path, "--json"])).unwrap();
        assert!(out.contains("\"detection\""));
    }

    #[test]
    fn detect_scope_subset() {
        let path = generated_trace("scope.json");
        let out = detect(&argv(&[&path, "--scope", "0,2"])).unwrap();
        assert!(out.contains("l(P0)"));
        assert!(out.contains("l(P2)"));
        assert!(!out.contains("l(P1)"));
    }

    #[test]
    fn gcp_command_runs() {
        let path = generated_trace("gcp.json");
        let out = gcp(&argv(&[&path, "--channel", "0-1:atmost:99"])).unwrap();
        assert!(out.contains("≤99"));
        assert!(out.contains("DETECTED"));
    }

    #[test]
    fn render_text_and_dot() {
        let path = generated_trace("render.json");
        let text = render(&argv(&[&path])).unwrap();
        assert!(text.contains("P0"));
        let dot = render(&argv(&[&path, "--dot"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn detect_slice_writes_prefix() {
        let path = generated_trace("slice_src.json");
        let out_path = tmpfile("slice_out.json");
        let out = detect(&argv(&[&path, "--scope", "0,1", "--slice", &out_path])).unwrap();
        assert!(out.contains("sliced trace"), "{out}");
        // The slice is a valid computation that still detects the same cut.
        let sliced = load(&out_path).unwrap();
        let full = load(&path).unwrap();
        assert!(sliced.total_events() <= full.total_events());
        let wcp = parse_scope(&Args::parse(&argv(&["--scope", "0,1"])).unwrap(), &sliced).unwrap();
        let before = wcp_detect::TokenDetector::new()
            .detect(&full.annotate(), &wcp)
            .detection;
        let after = wcp_detect::TokenDetector::new()
            .detect(&sliced.annotate(), &wcp)
            .detection;
        assert_eq!(before, after);
    }

    #[test]
    fn lattice_command_counts_and_searches() {
        let path = generated_trace("lattice.json");
        let out = lattice(&argv(&[&path])).unwrap();
        assert!(out.contains("consistent global states:"));
        assert!(out.contains("first cut satisfying"));
        // Tiny budget triggers truncation reporting, not failure.
        let out = lattice(&argv(&[&path, "--max-states", "2"])).unwrap();
        assert!(out.contains("budget of 2"));
    }

    #[test]
    fn trace_writes_replayable_jsonl() {
        let path = generated_trace("trace_src.json");
        let events_path = tmpfile("trace_events.jsonl");
        let out = trace(&argv(&[&path, "--events", &events_path])).unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("DETECTED"), "{out}");
        // The JSONL round-trips and replays to the reported metrics.
        let text = fs::read_to_string(&events_path).unwrap();
        let events = jsonl::read_str(&text).unwrap();
        assert!(!events.is_empty());
        let computation = load(&path).unwrap();
        let wcp = Wcp::over_all(&computation);
        let report = TokenDetector::new().detect(&computation.annotate(), &wcp);
        assert_eq!(wcp_detect::replay_metrics(wcp.n(), &events), report.metrics);
    }

    #[test]
    fn trace_supports_every_offline_algorithm() {
        let path = generated_trace("trace_algos.json");
        for alg in [
            "token",
            "checker",
            "direct",
            "lattice",
            "multi:2",
            "parallel:2",
        ] {
            let events_path = tmpfile(&format!("trace_{}.jsonl", alg.replace(':', "_")));
            let out = trace(&argv(&[
                &path,
                "--algorithm",
                alg,
                "--events",
                &events_path,
            ]))
            .unwrap();
            assert!(out.contains("wrote"), "{alg}: {out}");
            let events = jsonl::read_str(&fs::read_to_string(&events_path).unwrap()).unwrap();
            assert!(!events.is_empty(), "{alg}");
        }
        assert!(trace(&argv(&[&path])).is_err(), "--events is required");
    }

    #[test]
    fn stats_reports_both_online_sections() {
        let path = generated_trace("stats.json");
        let out = stats(&argv(&[&path])).unwrap();
        assert!(
            out.contains("section 3: vector-clock token algorithm"),
            "{out}"
        );
        assert!(
            out.contains("section 4: direct-dependence algorithm"),
            "{out}"
        );
        assert!(out.contains("token timeline"), "{out}");
        assert!(out.contains("monitor | token_in"), "{out}");
        assert!(out.contains("queue delay"), "{out}");
        assert!(out.contains("detection latency:"), "{out}");
        assert!(out.contains("DETECTED"), "{out}");
        // The wire section surfaces the transport-layer counters.
        assert!(out.contains("wire transport"), "{out}");
        assert!(out.contains("batch flushes"), "{out}");
        assert!(out.contains("ready depth"), "{out}");
        assert!(out.contains("buffer pool"), "{out}");
        // Including the v2 compression accounting: the default loopback
        // run negotiates v2, so actual bytes land below the v1-equivalent.
        assert!(out.contains("B v1-equiv"), "{out}");
        assert!(out.contains("clock chains"), "{out}");
        let wire_line = out
            .lines()
            .find(|l| l.starts_with("wire v2"))
            .expect("wire v2 line");
        let nums: Vec<u64> = wire_line
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(
            nums[0] < nums[1],
            "v2 must compress below the v1-equivalent: {wire_line}"
        );
        // And the session-layer section surfaces per-session counters.
        assert!(out.contains("multi-tenant session layer"), "{out}");
        assert!(out.contains("routed events"), "{out}");
        assert!(out.contains("shared store"), "{out}");
    }

    #[test]
    fn top_streams_frames_and_reports_the_verdict() {
        let path = generated_trace("top.json");
        let args = Args::parse(&argv(&[&path, "--interval-ms", "20", "--frames", "500"])).unwrap();
        let mut frames = Vec::new();
        let out = top_with_sink(&args, &mut |f| frames.push(f.to_string())).unwrap();
        // The final frame carries the merged dashboard and a settled verdict.
        assert!(out.contains("wcp top"), "{out}");
        assert!(out.contains("source | deltas"), "{out}");
        assert!(out.contains("verdict: DETECTED"), "{out}");
        assert!(out.contains("refreshes"), "{out}");
        assert!(out.contains("malformed"), "{out}");
        // Intermediate frames were streamed to the sink.
        assert!(!frames.is_empty());
        assert!(frames.iter().all(|f| f.contains("wcp top")));
    }

    #[test]
    fn obs_report_renders_timeline_audit_and_jsonl_export() {
        let path = generated_trace("obs_report.json");
        let events_path = tmpfile("obs_report_events.jsonl");
        let out = obs_report(&argv(&[&path, "--events", &events_path])).unwrap();
        assert!(out.contains("telemetry report"), "{out}");
        assert!(out.contains("merged timeline:"), "{out}");
        assert!(out.contains("token timeline"), "{out}");
        assert!(out.contains("paper-bound audit"), "{out}");
        assert!(out.contains("token hops"), "{out}");
        assert!(!out.contains("VIOLATED"), "{out}");
        assert!(out.contains("DETECTED"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        // The export replays as a JSONL event stream.
        let events = jsonl::read_str(&fs::read_to_string(&events_path).unwrap()).unwrap();
        assert!(!events.is_empty());
    }

    /// `wcp top` / `wcp obs-report` joined to a real TCP `wcp serve`
    /// session: peer 0 watches (or reports) while peers 1 and 2 run
    /// `serve --telemetry` and stream their deltas over the wire.
    #[test]
    fn top_and_obs_report_join_a_tcp_serve_session() {
        for watcher in ["top", "obs-report"] {
            let path = generated_trace(&format!("tcp_{watcher}.json"));
            let ports: Vec<u16> = (0..3)
                .map(|_| {
                    std::net::TcpListener::bind("127.0.0.1:0")
                        .unwrap()
                        .local_addr()
                        .unwrap()
                        .port()
                })
                .collect();
            let addrs = ports
                .iter()
                .map(|p| format!("127.0.0.1:{p}"))
                .collect::<Vec<_>>()
                .join(",");
            let (watched, served): (String, Vec<String>) = std::thread::scope(|s| {
                let watch = {
                    let path = path.clone();
                    let addrs = addrs.clone();
                    s.spawn(move || {
                        let base = [
                            path.as_str(),
                            "--scope",
                            "0,1,2",
                            "--peer",
                            "0",
                            "--addrs",
                            &addrs,
                        ];
                        if watcher == "top" {
                            let mut raw = argv(&base);
                            raw.extend(argv(&["--interval-ms", "20", "--frames", "500"]));
                            let args = Args::parse(&raw).unwrap();
                            top_with_sink(&args, &mut |_| {}).unwrap()
                        } else {
                            obs_report(&argv(&base)).unwrap()
                        }
                    })
                };
                let peers: Vec<_> = (1..3)
                    .map(|peer: usize| {
                        let path = path.clone();
                        let addrs = addrs.clone();
                        s.spawn(move || {
                            serve(&argv(&[
                                &path,
                                "--scope",
                                "0,1,2",
                                "--peer",
                                &peer.to_string(),
                                "--addrs",
                                &addrs,
                                "--telemetry",
                            ]))
                            .unwrap()
                        })
                    })
                    .collect();
                (
                    watch.join().unwrap(),
                    peers.into_iter().map(|h| h.join().unwrap()).collect(),
                )
            });
            // Peer 0 collected telemetry from every peer in the session.
            for src in ["S0", "S1", "S2"] {
                assert!(watched.contains(src), "{watcher} missing {src}:\n{watched}");
            }
            for out in &served {
                assert!(out.contains("telemetry:"), "{out}");
            }
        }
    }

    #[test]
    fn net_demo_runs_over_tcp_and_loopback() {
        let path = generated_trace("net_demo.json");
        for transport in ["tcp", "loopback"] {
            for algorithm in ["token", "direct"] {
                let out = net_demo(&argv(&[
                    &path,
                    "--transport",
                    transport,
                    "--algorithm",
                    algorithm,
                ]))
                .unwrap();
                assert!(
                    out.contains("simulator cross-check: identical verdict"),
                    "{transport}/{algorithm}: {out}"
                );
                assert!(out.contains("wire:"), "{out}");
            }
        }
    }

    #[test]
    fn net_demo_with_faults_still_matches_simulator() {
        let path = generated_trace("net_demo_faults.json");
        let out = net_demo(&argv(&[
            &path,
            "--transport",
            "loopback",
            "--delay",
            "0.25",
            "--duplicate",
            "0.2",
            "--reorder",
            "0.2",
            "--fault-seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("identical verdict"), "{out}");
        assert!(net_demo(&argv(&[&path, "--drop", "1.5"])).is_err());
        assert!(net_demo(&argv(&[&path, "--transport", "carrier-pigeon"])).is_err());
    }

    #[test]
    fn serve_peers_agree_on_the_verdict() {
        let path = generated_trace("serve.json");
        // Reserve three localhost ports, then release them for the peers.
        let ports: Vec<u16> = (0..3)
            .map(|_| {
                std::net::TcpListener::bind("127.0.0.1:0")
                    .unwrap()
                    .local_addr()
                    .unwrap()
                    .port()
            })
            .collect();
        let addrs = ports
            .iter()
            .map(|p| format!("127.0.0.1:{p}"))
            .collect::<Vec<_>>()
            .join(",");
        let outputs: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|peer| {
                    let path = path.clone();
                    let addrs = addrs.clone();
                    s.spawn(move || {
                        serve(&argv(&[
                            &path,
                            "--scope",
                            "0,1,2",
                            "--peer",
                            &peer.to_string(),
                            "--addrs",
                            &addrs,
                        ]))
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let verdicts: Vec<&str> = outputs
            .iter()
            .map(|o| {
                o.lines()
                    .find(|l| l.starts_with("DETECTED") || l.starts_with("UNDETECTED"))
                    .unwrap()
            })
            .collect();
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{verdicts:?}");
        // The standalone run agrees with the in-process simulator too.
        let computation = load(&path).unwrap();
        let wcp = Wcp::over(vec![
            ProcessId::new(0),
            ProcessId::new(1),
            ProcessId::new(2),
        ]);
        let sim = run_vc_token(&computation, &wcp, SimConfig::seeded(0));
        let expects_detected = matches!(sim.report.detection, Detection::Detected { .. });
        assert_eq!(
            verdicts[0].starts_with("DETECTED"),
            expects_detected,
            "{verdicts:?}"
        );
        assert!(serve(&argv(&[&path, "--peer", "9", "--addrs", &addrs])).is_err());
    }

    #[test]
    fn multi_demo_tabulates_and_cross_checks() {
        let path = generated_trace("multi_demo.json");
        for transport in ["loopback", "tcp"] {
            let out = multi_demo(&argv(&[
                &path,
                "--transport",
                transport,
                "--predicates",
                "5",
            ]))
            .unwrap();
            assert!(out.contains("sessions: 5"), "{transport}: {out}");
            assert!(out.contains("id | scope | verdict"), "{out}");
            // One table row per predicate, each resolved one way or the other.
            let rows = out
                .lines()
                .filter(|l| l.contains("DETECTED at [") || l.contains("| impossible"))
                .count();
            assert_eq!(rows, 5, "{out}");
            assert!(out.contains("routed events"), "{out}");
            assert!(out.contains("B/session"), "{out}");
            assert!(
                out.contains("simulator cross-check: identical verdicts and metrics"),
                "{out}"
            );
        }
        assert!(multi_demo(&argv(&[&path, "--predicates", "0"])).is_err());
        assert!(multi_demo(&argv(&[&path, "--transport", "smoke-signal"])).is_err());
    }

    #[test]
    fn multi_demo_pump_threads_is_invisible_in_the_output() {
        // The sharded parallel pump must not change a single verdict, so
        // the serial and 4-worker runs print identical tables.
        let path = generated_trace("multi_demo_pump.json");
        let serial = multi_demo(&argv(&[&path, "--predicates", "6"])).unwrap();
        let parallel =
            multi_demo(&argv(&[&path, "--predicates", "6", "--pump-threads", "4"])).unwrap();
        assert_eq!(serial, parallel);
        assert!(multi_demo(&argv(&[&path, "--pump-threads", "lots"])).is_err());
    }

    #[test]
    fn multi_demo_with_faults_still_matches_simulator() {
        let path = generated_trace("multi_demo_faults.json");
        let out = multi_demo(&argv(&[
            &path,
            "--transport",
            "loopback",
            "--predicates",
            "6",
            "--drop",
            "0.15",
            "--reorder",
            "0.2",
            "--fault-seed",
            "11",
        ]))
        .unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("identical verdicts and metrics"), "{out}");
    }

    #[test]
    fn serve_multi_peers_share_one_service() {
        let path = generated_trace("serve_multi.json");
        // 4 app peers + 1 service peer.
        let ports: Vec<u16> = (0..5)
            .map(|_| {
                std::net::TcpListener::bind("127.0.0.1:0")
                    .unwrap()
                    .local_addr()
                    .unwrap()
                    .port()
            })
            .collect();
        let addrs = ports
            .iter()
            .map(|p| format!("127.0.0.1:{p}"))
            .collect::<Vec<_>>()
            .join(",");
        let outputs: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..5)
                .map(|peer| {
                    let path = path.clone();
                    let addrs = addrs.clone();
                    s.spawn(move || {
                        serve(&argv(&[
                            &path,
                            "--multi",
                            "--predicates",
                            "4",
                            "--peer",
                            &peer.to_string(),
                            "--addrs",
                            &addrs,
                        ]))
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The service peer (peer 4) prints the outcome table; peer 0 the
        // controller's collected verdicts; both agree with the offline
        // engine on the same derived predicates.
        assert!(outputs[4].contains("(service)"), "{}", outputs[4]);
        assert!(
            outputs[4].contains("id | scope | verdict"),
            "{}",
            outputs[4]
        );
        assert!(outputs[0].contains("verdicts collected"), "{}", outputs[0]);
        let computation = load(&path).unwrap();
        let offline = wcp_session::run_multi_offline(&computation, &derived_predicates(4, 4));
        for outcome in &offline.outcomes {
            assert!(
                outputs[4].contains(&outcome_row(outcome)),
                "session {} row missing:\n{}",
                outcome.id,
                outputs[4]
            );
        }
        let detected = offline
            .outcomes
            .iter()
            .filter(|o| o.verdict.cut().is_some())
            .count();
        assert!(
            outputs[0].contains(&format!("4 verdicts collected ({detected} detected)")),
            "{}",
            outputs[0]
        );
        // Address-count mismatch (5 addrs for scope-style n) is a usage error.
        assert!(serve(&argv(&[
            &path,
            "--multi",
            "--peer",
            "0",
            "--addrs",
            "127.0.0.1:1"
        ]))
        .is_err());
    }

    #[test]
    fn bound_reports_theorem() {
        let out = bound(&argv(&["--n", "4", "--m", "10"])).unwrap();
        assert!(out.contains("bound nm−n = 36"));
        assert!(bound(&argv(&["--n", "1", "--m", "5"])).is_err());
    }

    #[test]
    fn fuzz_smoke_campaign_is_clean_and_summarized() {
        let out = fuzz(&argv(&["--seed", "1", "--cases", "8", "--no-net"])).unwrap();
        assert!(out.contains("cases run   | 8"), "{out}");
        assert!(out.contains("divergences | 0"), "{out}");
        assert!(out.contains("no divergences"), "{out}");
        assert!(fuzz(&argv(&["--cases", "0"])).is_err());
        assert!(fuzz(&argv(&["--cases", "many"])).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(info(&argv(&["/nonexistent/file.json"])).is_err());
        assert!(detect(&argv(&[])).is_err());
        let path = generated_trace("errors.json");
        assert!(detect(&argv(&[&path, "--algorithm", "bogus"])).is_err());
        assert!(detect(&argv(&[&path, "--scope", "9"])).is_err());
        assert!(gcp(&argv(&[&path, "--channel", "nonsense"])).is_err());
        assert!(parse_topology("weird").is_err());
        assert!(parse_topology("cs:2").is_ok());
        assert!(parse_topology("nb:1").is_ok());
    }

    #[test]
    fn out_of_scope_process_ids_are_cli_errors_not_panics() {
        let path = generated_trace("scope_errors.json");
        // The trace has 4 processes; id 9 must be a usage error (exit 2)
        // with a message naming the offending id for every scoped command.
        for result in [
            detect(&argv(&[&path, "--scope", "0,9"])),
            detect(&argv(&[
                &path,
                "--scope",
                "9",
                "--slice",
                &tmpfile("never.json"),
            ])),
            render(&argv(&[&path, "--scope", "9"])),
            render(&argv(&[&path, "--dot", "--scope", "0,nine"])),
        ] {
            let err = result.expect_err("out-of-scope id must not succeed");
            assert_ne!(err.code, 0);
            assert!(
                err.message.contains("out of range") || err.message.contains("bad process id"),
                "{}",
                err.message
            );
        }
        // A valid scope still renders.
        assert!(render(&argv(&[&path, "--scope", "0,1"])).is_ok());
    }
}

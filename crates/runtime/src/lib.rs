//! Threaded actor runtime: the same [`Actor`]s that run on
//! the deterministic simulator run here on real OS threads connected by
//! std mpsc channels.
//!
//! The paper's algorithms are asynchronous message-passing protocols; the
//! simulator demonstrates their behaviour reproducibly, while this runtime
//! demonstrates that nothing in the implementation depends on a simulated
//! global order — every monitor and application process genuinely runs
//! concurrently. Channels are unbounded and per-sender FIFO (`std::sync::mpsc`
//! preserves a single producer's order), which satisfies the paper's only
//! ordering requirement: FIFO application→monitor links.
//!
//! A run ends when an actor calls [`Context::stop`]
//! (detection reached a verdict) or when the system *quiesces* — no
//! messages in flight and no handler running — which is detected with an
//! in-flight counter.
//!
//! # Example
//!
//! ```rust
//! use wcp_runtime::{Runtime, StopCause};
//! use wcp_sim::{Actor, ActorId, Context, WireSize};
//!
//! #[derive(Clone)]
//! struct Ping(u32);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//!
//! struct Echo { peer: Option<ActorId> }
//! impl Actor<Ping> for Echo {
//!     fn on_start(&mut self, ctx: &mut dyn Context<Ping>) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, Ping(8));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut dyn Context<Ping>, from: ActorId, msg: Ping) {
//!         if msg.0 == 0 { ctx.stop() } else { ctx.send(from, Ping(msg.0 - 1)) }
//!     }
//! }
//!
//! let mut rt = Runtime::new();
//! let a = rt.add_actor(Box::new(Echo { peer: None }));
//! let _b = rt.add_actor(Box::new(Echo { peer: Some(a) }));
//! let outcome = rt.run();
//! assert_eq!(outcome.cause, StopCause::Stopped);
//! assert_eq!(outcome.metrics.total_sent(), 9); // Ping(8) down to Ping(0)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use wcp_sim::{Actor, ActorId, Context, SimMetrics, WireSize};

/// Why the runtime stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// An actor called `stop` (e.g. detection reached a verdict).
    Stopped,
    /// No messages in flight and no handler running.
    Quiesced,
}

/// Result of [`Runtime::run`].
#[derive(Debug, Clone)]
pub struct RuntimeOutcome {
    /// Why the run ended.
    pub cause: StopCause,
    /// Per-actor counters (same shape as the simulator's).
    pub metrics: SimMetrics,
    /// Total messages delivered.
    pub delivered: u64,
}

enum ThreadMsg<M> {
    Deliver { from: ActorId, msg: M },
    Shutdown,
}

/// Shared state between all actor threads.
struct Shared<M> {
    senders: Vec<Sender<ThreadMsg<M>>>,
    /// Undelivered messages + running handlers + pending `on_start`s.
    in_flight: AtomicI64,
    stop_flag: AtomicBool,
    metrics: Mutex<SimMetrics>,
    delivered: AtomicI64,
}

impl<M> Shared<M> {
    fn initiate_shutdown(&self, cause_stop: bool) {
        if cause_stop {
            self.stop_flag.store(true, Ordering::SeqCst);
        }
        for s in &self.senders {
            // A closed channel just means that thread already exited.
            let _ = s.send(ThreadMsg::Shutdown);
        }
    }
}

/// The per-thread context handed to actor handlers.
struct ThreadCtx<M> {
    me: ActorId,
    shared: Arc<Shared<M>>,
}

impl<M: WireSize> Context<M> for ThreadCtx<M> {
    fn me(&self) -> ActorId {
        self.me
    }

    fn send(&mut self, to: ActorId, msg: M) {
        assert!(
            to.index() < self.shared.senders.len(),
            "message addressed to unregistered actor {to}"
        );
        self.shared
            .metrics
            .lock()
            .unwrap()
            .record_send(self.me, msg.wire_size() as u64);
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = self.shared.senders[to.index()].send(ThreadMsg::Deliver { from: self.me, msg });
    }

    fn add_work(&mut self, units: u64) {
        self.shared
            .metrics
            .lock()
            .unwrap()
            .record_work(self.me, units);
    }

    fn stop(&mut self) {
        self.shared.initiate_shutdown(true);
    }
}

/// A collection of actors, each run on its own OS thread.
pub struct Runtime<M> {
    actors: Vec<Box<dyn Actor<M>>>,
}

impl<M> Default for Runtime<M> {
    fn default() -> Self {
        Runtime { actors: Vec::new() }
    }
}

impl<M: WireSize + Send + 'static> Runtime<M> {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Runtime::default()
    }

    /// Registers an actor, returning its id (ids are compatible with the
    /// simulator's: dense, in registration order).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId::new(self.actors.len() as u32);
        self.actors.push(actor);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Spawns one thread per actor, runs to a verdict or quiescence, joins
    /// all threads, and reports.
    pub fn run(self) -> RuntimeOutcome {
        let count = self.actors.len();
        let mut senders: Vec<Sender<ThreadMsg<M>>> = Vec::with_capacity(count);
        let mut receivers: Vec<Receiver<ThreadMsg<M>>> = Vec::with_capacity(count);
        for _ in 0..count {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            // One virtual in-flight item per pending on_start.
            in_flight: AtomicI64::new(count as i64),
            stop_flag: AtomicBool::new(false),
            metrics: Mutex::new(SimMetrics::new(count)),
            delivered: AtomicI64::new(0),
        });

        let mut handles = Vec::with_capacity(count);
        for (i, (mut actor, rx)) in self.actors.into_iter().zip(receivers).enumerate() {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let me = ActorId::new(i as u32);
                let mut ctx = ThreadCtx {
                    me,
                    shared: Arc::clone(&shared),
                };
                actor.on_start(&mut ctx);
                if shared.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                    shared.initiate_shutdown(false);
                }
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ThreadMsg::Shutdown => break,
                        ThreadMsg::Deliver { from, msg } => {
                            shared.metrics.lock().unwrap().record_receive(me);
                            shared.delivered.fetch_add(1, Ordering::SeqCst);
                            actor.on_message(&mut ctx, from, msg);
                            if shared.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                                shared.initiate_shutdown(false);
                            }
                        }
                    }
                }
            }));
        }

        for h in handles {
            h.join().expect("actor thread panicked");
        }

        let cause = if shared.stop_flag.load(Ordering::SeqCst) {
            StopCause::Stopped
        } else {
            StopCause::Quiesced
        };
        let metrics = shared.metrics.lock().unwrap().clone();
        let delivered = shared.delivered.load(Ordering::SeqCst) as u64;
        RuntimeOutcome {
            cause,
            metrics,
            delivered,
        }
    }
}

impl<M> std::fmt::Debug for Runtime<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("actors", &self.actors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Clone)]
    struct Num(u64);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Forwards a counter around a ring `rounds` times, then stops.
    struct Ring {
        next: ActorId,
        kick_off: bool,
        limit: u64,
        seen: Arc<AtomicU64>,
    }
    impl Actor<Num> for Ring {
        fn on_start(&mut self, ctx: &mut dyn Context<Num>) {
            if self.kick_off {
                ctx.send(self.next, Num(0));
            }
        }
        fn on_message(&mut self, ctx: &mut dyn Context<Num>, _from: ActorId, msg: Num) {
            self.seen.fetch_add(1, Ordering::SeqCst);
            ctx.add_work(1);
            if msg.0 >= self.limit {
                ctx.stop();
            } else {
                ctx.send(self.next, Num(msg.0 + 1));
            }
        }
    }

    #[test]
    fn ring_runs_to_stop() {
        let seen = Arc::new(AtomicU64::new(0));
        let mut rt = Runtime::new();
        let n = 5u32;
        for i in 0..n {
            rt.add_actor(Box::new(Ring {
                next: ActorId::new((i + 1) % n),
                kick_off: i == 0,
                limit: 50,
                seen: seen.clone(),
            }));
        }
        let outcome = rt.run();
        assert_eq!(outcome.cause, StopCause::Stopped);
        assert_eq!(outcome.delivered, 51);
        assert_eq!(seen.load(Ordering::SeqCst), 51);
        assert_eq!(outcome.metrics.total_work(), 51);
    }

    #[test]
    fn quiesces_when_no_messages() {
        struct Silent;
        impl Actor<Num> for Silent {
            fn on_message(&mut self, _: &mut dyn Context<Num>, _: ActorId, _: Num) {}
        }
        let mut rt = Runtime::new();
        rt.add_actor(Box::new(Silent));
        rt.add_actor(Box::new(Silent));
        let outcome = rt.run();
        assert_eq!(outcome.cause, StopCause::Quiesced);
        assert_eq!(outcome.delivered, 0);
    }

    #[test]
    fn quiesces_after_finite_exchange() {
        struct Burst {
            to: Option<ActorId>,
        }
        impl Actor<Num> for Burst {
            fn on_start(&mut self, ctx: &mut dyn Context<Num>) {
                if let Some(to) = self.to {
                    for i in 0..20 {
                        ctx.send(to, Num(i));
                    }
                }
            }
            fn on_message(&mut self, _: &mut dyn Context<Num>, _: ActorId, _: Num) {}
        }
        let mut rt = Runtime::new();
        let sink = rt.add_actor(Box::new(Burst { to: None }));
        rt.add_actor(Box::new(Burst { to: Some(sink) }));
        let outcome = rt.run();
        assert_eq!(outcome.cause, StopCause::Quiesced);
        assert_eq!(outcome.delivered, 20);
        assert_eq!(outcome.metrics.total_sent(), 20);
        assert_eq!(outcome.metrics.total_bytes(), 160);
    }

    #[test]
    fn per_sender_order_is_preserved() {
        struct Checker {
            expected: u64,
            ok: Arc<AtomicU64>,
        }
        impl Actor<Num> for Checker {
            fn on_message(&mut self, _: &mut dyn Context<Num>, _: ActorId, msg: Num) {
                if msg.0 == self.expected {
                    self.expected += 1;
                    self.ok.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        struct Sender100 {
            to: ActorId,
        }
        impl Actor<Num> for Sender100 {
            fn on_start(&mut self, ctx: &mut dyn Context<Num>) {
                for i in 0..100 {
                    ctx.send(self.to, Num(i));
                }
            }
            fn on_message(&mut self, _: &mut dyn Context<Num>, _: ActorId, _: Num) {}
        }
        let ok = Arc::new(AtomicU64::new(0));
        let mut rt = Runtime::new();
        let chk = rt.add_actor(Box::new(Checker {
            expected: 0,
            ok: ok.clone(),
        }));
        rt.add_actor(Box::new(Sender100 { to: chk }));
        rt.run();
        assert_eq!(ok.load(Ordering::SeqCst), 100, "FIFO violated");
    }
}

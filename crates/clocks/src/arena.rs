//! Flat arena storage for fixed-width clock vectors.
//!
//! The detection algorithms consume large numbers of scope-projected
//! snapshot timestamps, all of the same width `n`. Storing each as its own
//! heap-allocated [`VectorClock`](crate::VectorClock) costs one allocation
//! per snapshot and scatters the comparisons the Figure 3 loop makes across
//! the heap. A [`ClockArena`] instead packs every clock into one `Vec<u64>`
//! with stride `n`; rows are handed out as [`ClockRow`] slice views carrying
//! the same `causal_order` / componentwise-compare API as `VectorClock`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Deref;

use crate::{CausalOrder, ProcessId, VectorClock};

/// Causal comparison of two raw component slices (the slice-level form of
/// [`VectorClock::causal_order`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_causal_order(a: &[u64], b: &[u64]) -> CausalOrder {
    assert_eq!(
        a.len(),
        b.len(),
        "cannot compare vector clocks of different widths"
    );
    let mut less = false;
    let mut greater = false;
    for (x, y) in a.iter().zip(b) {
        match x.cmp(y) {
            Ordering::Less => less = true,
            Ordering::Greater => greater = true,
            Ordering::Equal => {}
        }
        if less && greater {
            return CausalOrder::Concurrent;
        }
    }
    match (less, greater) {
        (false, false) => CausalOrder::Equal,
        (true, false) => CausalOrder::Before,
        (false, true) => CausalOrder::After,
        (true, true) => CausalOrder::Concurrent,
    }
}

/// A borrowed, fixed-width clock vector: one row of a [`ClockArena`].
///
/// Derefs to `&[u64]`, so indexing and iteration work as on a slice, and
/// mirrors the comparison API of [`VectorClock`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ClockRow<'a> {
    components: &'a [u64],
}

impl<'a> ClockRow<'a> {
    /// Wraps a raw component slice as a clock view.
    pub fn new(components: &'a [u64]) -> Self {
        ClockRow { components }
    }

    /// Read-only view of the raw components.
    pub fn as_slice(&self) -> &'a [u64] {
        self.components
    }

    /// Returns the component for `p`, or `None` if out of range.
    pub fn get(&self, p: ProcessId) -> Option<u64> {
        self.components.get(p.index()).copied()
    }

    /// Determines the causal relationship to another timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn causal_order(&self, other: ClockRow<'_>) -> CausalOrder {
        slice_causal_order(self.components, other.components)
    }

    /// `true` iff `self → other` in the happened-before order.
    pub fn happened_before(&self, other: ClockRow<'_>) -> bool {
        self.causal_order(other) == CausalOrder::Before
    }

    /// `true` iff the two timestamps are concurrent (`self ‖ other`).
    pub fn concurrent(&self, other: ClockRow<'_>) -> bool {
        self.causal_order(other) == CausalOrder::Concurrent
    }

    /// Componentwise `≤` (reflexive happened-before).
    pub fn le(&self, other: ClockRow<'_>) -> bool {
        matches!(
            self.causal_order(other),
            CausalOrder::Equal | CausalOrder::Before
        )
    }

    /// Copies the row into an owned [`VectorClock`].
    pub fn to_vector_clock(&self) -> VectorClock {
        VectorClock::from_components(self.components.to_vec())
    }

    /// Size of this clock in bytes when transmitted (one `u64` per
    /// component), matching [`VectorClock::wire_size`].
    pub fn wire_size(&self) -> usize {
        self.components.len() * 8
    }
}

impl Deref for ClockRow<'_> {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.components
    }
}

impl fmt::Debug for ClockRow<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClockRow({:?})", self.components)
    }
}

impl fmt::Display for ClockRow<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Flat storage for clock vectors of a fixed width.
///
/// All rows share one backing `Vec<u64>` with stride [`stride`](Self::stride),
/// so building an arena of `m` clocks performs `O(1)` allocations (amortized
/// — exactly one when constructed [`with_capacity`](Self::with_capacity))
/// instead of `m`.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{CausalOrder, ClockArena};
///
/// let mut arena = ClockArena::with_capacity(3, 2);
/// let a = arena.push(&[1, 0, 0]);
/// let b = arena.push(&[1, 1, 0]);
/// assert_eq!(arena.row(a).causal_order(arena.row(b)), CausalOrder::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockArena {
    stride: usize,
    data: Vec<u64>,
}

impl ClockArena {
    /// Creates an empty arena whose rows are `stride` components wide.
    pub fn new(stride: usize) -> Self {
        ClockArena {
            stride,
            data: Vec::new(),
        }
    }

    /// Creates an empty arena pre-sized for `rows` clocks, so filling it to
    /// that size performs no further allocations.
    pub fn with_capacity(stride: usize, rows: usize) -> Self {
        ClockArena {
            stride,
            data: Vec::with_capacity(stride * rows),
        }
    }

    /// Width of every row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        if self.stride == 0 {
            0
        } else {
            self.data.len() / self.stride
        }
    }

    /// Returns `true` if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `components` is not exactly [`stride`](Self::stride) wide.
    pub fn push(&mut self, components: &[u64]) -> usize {
        assert_eq!(
            components.len(),
            self.stride,
            "row width must equal the arena stride"
        );
        let id = self.len();
        self.data.extend_from_slice(components);
        id
    }

    /// Appends an all-zero row and returns a mutable view of it, so callers
    /// can fill components in place without a temporary buffer.
    pub fn push_zeroed(&mut self) -> &mut [u64] {
        let start = self.data.len();
        self.data.resize(start + self.stride, 0);
        &mut self.data[start..]
    }

    /// Returns the row at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn row(&self, index: usize) -> ClockRow<'_> {
        let start = index * self.stride;
        ClockRow::new(&self.data[start..start + self.stride])
    }

    /// Iterates over all rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = ClockRow<'_>> {
        self.data
            .chunks_exact(self.stride.max(1))
            .map(ClockRow::new)
    }

    /// Appends every row of `other`, preserving order. Used to concatenate
    /// per-thread arenas after a parallel build.
    ///
    /// # Panics
    ///
    /// Panics if the strides differ.
    pub fn append(&mut self, other: &ClockArena) {
        assert_eq!(
            self.stride, other.stride,
            "cannot append arenas of different strides"
        );
        self.data.extend_from_slice(&other.data);
    }

    /// Read-only view of the whole backing buffer.
    pub fn as_flat_slice(&self) -> &[u64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_round_trip() {
        let mut arena = ClockArena::with_capacity(3, 2);
        let a = arena.push(&[1, 2, 3]);
        let b = arena.push(&[4, 5, 6]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.row(a).as_slice(), &[1, 2, 3]);
        assert_eq!(arena.row(b).as_slice(), &[4, 5, 6]);
        assert_eq!(arena.as_flat_slice(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn push_zeroed_fills_in_place() {
        let mut arena = ClockArena::new(2);
        arena.push_zeroed().copy_from_slice(&[7, 8]);
        let row = arena.push_zeroed();
        row[1] = 9;
        assert_eq!(arena.row(0).as_slice(), &[7, 8]);
        assert_eq!(arena.row(1).as_slice(), &[0, 9]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn push_wrong_width_panics() {
        ClockArena::new(3).push(&[1, 2]);
    }

    #[test]
    fn row_comparisons_match_vector_clock() {
        let cases: [(&[u64], &[u64]); 4] = [
            (&[1, 2], &[1, 2]),
            (&[1, 2], &[1, 3]),
            (&[1, 3], &[1, 2]),
            (&[1, 3], &[2, 2]),
        ];
        for (a, b) in cases {
            let mut arena = ClockArena::new(2);
            let ia = arena.push(a);
            let ib = arena.push(b);
            let va = VectorClock::from_components(a.to_vec());
            let vb = VectorClock::from_components(b.to_vec());
            assert_eq!(
                arena.row(ia).causal_order(arena.row(ib)),
                va.causal_order(&vb),
                "{a:?} vs {b:?}"
            );
            assert_eq!(
                arena.row(ia).happened_before(arena.row(ib)),
                va.happened_before(&vb)
            );
            assert_eq!(arena.row(ia).concurrent(arena.row(ib)), va.concurrent(&vb));
            assert_eq!(arena.row(ia).le(arena.row(ib)), va.le(&vb));
        }
    }

    #[test]
    fn row_mirrors_vector_clock_accessors() {
        let mut arena = ClockArena::new(3);
        let i = arena.push(&[5, 0, 7]);
        let row = arena.row(i);
        assert_eq!(row.get(ProcessId::new(0)), Some(5));
        assert_eq!(row.get(ProcessId::new(3)), None);
        assert_eq!(row.wire_size(), 24);
        assert_eq!(row.to_string(), "[5,0,7]");
        assert_eq!(row[2], 7); // Deref to slice
        assert_eq!(
            row.to_vector_clock(),
            VectorClock::from_components(vec![5, 0, 7])
        );
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut left = ClockArena::new(2);
        left.push(&[1, 1]);
        let mut right = ClockArena::new(2);
        right.push(&[2, 2]);
        right.push(&[3, 3]);
        left.append(&right);
        assert_eq!(left.len(), 3);
        assert_eq!(
            left.rows()
                .map(|r| r.as_slice().to_vec())
                .collect::<Vec<_>>(),
            vec![vec![1, 1], vec![2, 2], vec![3, 3]]
        );
    }

    #[test]
    fn empty_arena_properties() {
        let arena = ClockArena::new(4);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.rows().count(), 0);
        assert_eq!(ClockArena::new(0).len(), 0);
    }

    #[test]
    fn slice_causal_order_matches_vector_clock_exhaustively() {
        // Every pair of 2-wide clocks with components in 0..3.
        for a0 in 0..3u64 {
            for a1 in 0..3u64 {
                for b0 in 0..3u64 {
                    for b1 in 0..3u64 {
                        let a = [a0, a1];
                        let b = [b0, b1];
                        let va = VectorClock::from_components(a.to_vec());
                        let vb = VectorClock::from_components(b.to_vec());
                        assert_eq!(slice_causal_order(&a, &b), va.causal_order(&vb));
                    }
                }
            }
        }
    }
}

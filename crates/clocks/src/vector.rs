//! Fidge/Mattern vector clocks.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

use crate::ProcessId;

/// Causal relationship between two vector timestamps.
///
/// Returned by [`VectorClock::causal_order`]. `Before`/`After` correspond to
/// Lamport's happened-before relation `→`; `Concurrent` is the paper's `‖`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalOrder {
    /// The two timestamps are identical.
    Equal,
    /// `self → other`: self causally precedes other.
    Before,
    /// `other → self`: self causally follows other.
    After,
    /// Neither precedes the other (`self ‖ other`).
    Concurrent,
}

/// A vector clock over a fixed set of processes.
///
/// Property 1 of Section 3.1 of the paper: for states `α`, `β` with vector
/// clocks `α.v`, `β.v`, we have `α → β` iff `α.v < β.v` (componentwise `≤`
/// with at least one strict inequality). Property 2: for a vector `v` taken
/// on process `P_i` and any `j ≠ i`, state `(j, v[j]) → (i, v[i])`.
///
/// The clock follows the Figure 2 protocol: `v[i]` starts at `1` on its
/// owning process (see [`VectorClock::init_process`]), messages carry the
/// sender's clock, and `v[i]` is incremented *after* each send and after
/// each receive-merge, so `v[i]` equals the 1-based index of the current
/// communication interval.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{ProcessId, VectorClock, CausalOrder};
///
/// let p = ProcessId::new(0);
/// let mut v = VectorClock::new(3);
/// v.init_process(p);
/// assert_eq!(v[p], 1);
/// v.tick(p);
/// assert_eq!(v[p], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    components: Vec<u64>,
}

// A `VectorClock` travels on the wire as a bare array of components.
impl ToJson for VectorClock {
    fn to_json(&self) -> Json {
        Json::Arr(self.components.iter().map(|&c| Json::UInt(c)).collect())
    }
}

impl FromJson for VectorClock {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let components = value
            .expect_array()?
            .iter()
            .map(Json::expect_u64)
            .collect::<Result<Vec<u64>, JsonError>>()?;
        Ok(VectorClock { components })
    }
}

impl VectorClock {
    /// Creates an all-zero vector clock over `n` processes.
    ///
    /// An all-zero clock represents "before any state"; call
    /// [`init_process`](Self::init_process) on the owning process before use
    /// as a live clock.
    pub fn new(n: usize) -> Self {
        VectorClock {
            components: vec![0; n],
        }
    }

    /// Creates a vector clock from raw components.
    pub fn from_components(components: Vec<u64>) -> Self {
        VectorClock { components }
    }

    /// Sets the owning process's component to `1` (Figure 2 initialization:
    /// `vclock[i] = 1`, all others `0`).
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range for this clock's width.
    pub fn init_process(&mut self, owner: ProcessId) {
        self.components[owner.index()] = 1;
    }

    /// Number of processes this clock ranges over.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the clock ranges over zero processes.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns the component for `p`, or `None` if out of range.
    pub fn get(&self, p: ProcessId) -> Option<u64> {
        self.components.get(p.index()).copied()
    }

    /// Sets the component for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: ProcessId, value: u64) {
        self.components[p.index()] = value;
    }

    /// Increments the component owned by `p` (performed after each send or
    /// receive in Figure 2).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn tick(&mut self, p: ProcessId) {
        self.components[p.index()] += 1;
    }

    /// Componentwise maximum with `other` (the receive rule of Figure 2:
    /// `∀j: vclock[j] := max(vclock[j], msg.vclock[j])`).
    ///
    /// # Panics
    ///
    /// Panics if the two clocks have different widths.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.components.len(),
            other.components.len(),
            "cannot merge vector clocks of different widths"
        );
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Returns the least upper bound (componentwise max) of two clocks.
    pub fn join(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Returns the greatest lower bound (componentwise min) of two clocks.
    pub fn meet(&self, other: &VectorClock) -> VectorClock {
        assert_eq!(self.components.len(), other.components.len());
        VectorClock {
            components: self
                .components
                .iter()
                .zip(&other.components)
                .map(|(a, b)| *a.min(b))
                .collect(),
        }
    }

    /// Determines the causal relationship between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn causal_order(&self, other: &VectorClock) -> CausalOrder {
        crate::slice_causal_order(&self.components, &other.components)
    }

    /// `true` iff `self → other` in the happened-before order.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.causal_order(other) == CausalOrder::Before
    }

    /// `true` iff the two timestamps are concurrent (`self ‖ other`).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.causal_order(other) == CausalOrder::Concurrent
    }

    /// Componentwise `≤` (reflexive happened-before).
    pub fn le(&self, other: &VectorClock) -> bool {
        matches!(
            self.causal_order(other),
            CausalOrder::Equal | CausalOrder::Before
        )
    }

    /// Iterates over `(ProcessId, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, u64)> + '_ {
        self.components
            .iter()
            .enumerate()
            .map(|(i, &c)| (ProcessId::new(i as u32), c))
    }

    /// Read-only view of the raw components.
    pub fn as_slice(&self) -> &[u64] {
        &self.components
    }

    /// Consumes the clock and returns the raw components.
    pub fn into_components(self) -> Vec<u64> {
        self.components
    }

    /// Size of this clock in bytes when transmitted (one `u64` per
    /// component). Used by the metrics layer to account message bits.
    pub fn wire_size(&self) -> usize {
        self.components.len() * 8
    }
}

impl Index<ProcessId> for VectorClock {
    type Output = u64;

    fn index(&self, p: ProcessId) -> &u64 {
        &self.components[p.index()]
    }
}

impl PartialOrd for VectorClock {
    /// Partial order induced by happened-before: `a < b` iff `a → b`.
    /// Returns `None` for concurrent timestamps.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.causal_order(other) {
            CausalOrder::Equal => Some(Ordering::Equal),
            CausalOrder::Before => Some(Ordering::Less),
            CausalOrder::After => Some(Ordering::Greater),
            CausalOrder::Concurrent => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<u64> for VectorClock {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        VectorClock {
            components: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(components: &[u64]) -> VectorClock {
        VectorClock::from_components(components.to_vec())
    }

    #[test]
    fn new_is_all_zero() {
        let v = VectorClock::new(4);
        assert_eq!(v.as_slice(), &[0, 0, 0, 0]);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(VectorClock::new(0).is_empty());
    }

    #[test]
    fn init_and_tick_follow_figure2() {
        let p = ProcessId::new(1);
        let mut v = VectorClock::new(3);
        v.init_process(p);
        assert_eq!(v.as_slice(), &[0, 1, 0]);
        v.tick(p);
        v.tick(p);
        assert_eq!(v[p], 3);
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = vc(&[3, 0, 5]);
        a.merge(&vc(&[1, 4, 5]));
        assert_eq!(a.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn join_meet_lattice_identities() {
        let a = vc(&[3, 0, 5]);
        let b = vc(&[1, 4, 5]);
        assert_eq!(a.join(&b).as_slice(), &[3, 4, 5]);
        assert_eq!(a.meet(&b).as_slice(), &[1, 0, 5]);
        // absorption: a ⊓ (a ⊔ b) = a
        assert_eq!(a.meet(&a.join(&b)), a);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = VectorClock::new(2);
        a.merge(&VectorClock::new(3));
    }

    #[test]
    fn causal_order_cases() {
        assert_eq!(vc(&[1, 2]).causal_order(&vc(&[1, 2])), CausalOrder::Equal);
        assert_eq!(vc(&[1, 2]).causal_order(&vc(&[1, 3])), CausalOrder::Before);
        assert_eq!(vc(&[1, 3]).causal_order(&vc(&[1, 2])), CausalOrder::After);
        assert_eq!(
            vc(&[1, 3]).causal_order(&vc(&[2, 2])),
            CausalOrder::Concurrent
        );
    }

    #[test]
    fn happened_before_is_strict() {
        let a = vc(&[1, 2]);
        assert!(!a.happened_before(&a));
        assert!(a.le(&a));
        assert!(a.happened_before(&vc(&[2, 2])));
    }

    #[test]
    fn partial_ord_matches_causal_order() {
        assert!(vc(&[1, 1]) < vc(&[1, 2]));
        assert!(vc(&[1, 2]) > vc(&[1, 1]));
        assert_eq!(vc(&[1, 2]).partial_cmp(&vc(&[2, 1])), None);
    }

    #[test]
    fn message_exchange_creates_causality() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.init_process(p0);
        b.init_process(p1);
        assert!(a.concurrent(&b));

        let msg = a.clone();
        a.tick(p0);
        b.merge(&msg);
        b.tick(p1);
        assert!(msg.happened_before(&b));
        // Property 2: (0, b[0]) is the send interval, and it precedes (1, b[1]).
        assert_eq!(b[p0], 1);
        assert_eq!(b[p1], 2);
    }

    #[test]
    fn display_and_from_iter() {
        let v: VectorClock = [1u64, 0, 7].into_iter().collect();
        assert_eq!(v.to_string(), "[1,0,7]");
    }

    #[test]
    fn wire_size_is_eight_bytes_per_component() {
        assert_eq!(VectorClock::new(5).wire_size(), 40);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let v = VectorClock::new(2);
        assert_eq!(v.get(ProcessId::new(2)), None);
        assert_eq!(v.get(ProcessId::new(1)), Some(0));
    }

    #[test]
    fn json_is_transparent_array() {
        let v = vc(&[1, 2, 3]);
        assert_eq!(v.to_json().to_string(), "[1,2,3]");
        let back = VectorClock::from_json(&Json::parse("[1,2,3]").unwrap()).unwrap();
        assert_eq!(back, v);
    }
}

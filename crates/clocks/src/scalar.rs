//! Scalar logical clock for the direct-dependence algorithm (Section 4.1).

use std::fmt;

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

/// The per-process logical counter of the direct-dependence algorithm.
///
/// Section 4.1 of the paper: "Each application process uses a logical counter
/// to uniquely identify candidate states. The counter is incremented on each
/// send or receive performed by the application process. The counter is
/// attached to each message sent between application processes."
///
/// Unlike a Lamport clock, the counter is *not* merged on receive — it only
/// counts local communication events, so its value equals the 1-based index
/// of the current communication interval (mirroring `vclock[i]` of the
/// vector-clock algorithm; see Table 1 of the paper).
///
/// # Example
///
/// ```rust
/// use wcp_clocks::ScalarClock;
///
/// let mut c = ScalarClock::new();
/// assert_eq!(c.value(), 1); // first interval
/// let tag = c.value();      // attached to an outgoing message
/// c.tick();                 // advance past the send
/// assert_eq!(c.value(), 2);
/// assert_eq!(tag, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScalarClock(u64);

impl ScalarClock {
    /// Creates a clock at the first interval (value `1`).
    pub const fn new() -> Self {
        ScalarClock(1)
    }

    /// Creates a clock with an explicit value (`0` = before any state).
    pub const fn from_value(value: u64) -> Self {
        ScalarClock(value)
    }

    /// Current interval index.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Advances the clock past a send or receive event.
    pub fn tick(&mut self) {
        self.0 += 1;
    }
}

impl Default for ScalarClock {
    fn default() -> Self {
        ScalarClock::new()
    }
}

impl fmt::Display for ScalarClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<ScalarClock> for u64 {
    fn from(c: ScalarClock) -> Self {
        c.0
    }
}

// A `ScalarClock` travels on the wire as a bare integer.
impl ToJson for ScalarClock {
    fn to_json(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for ScalarClock {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_u64().map(ScalarClock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_one() {
        assert_eq!(ScalarClock::new().value(), 1);
        assert_eq!(ScalarClock::default(), ScalarClock::new());
    }

    #[test]
    fn tick_increments() {
        let mut c = ScalarClock::new();
        c.tick();
        c.tick();
        assert_eq!(c.value(), 3);
        assert_eq!(u64::from(c), 3);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ScalarClock::from_value(2) < ScalarClock::from_value(5));
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(ScalarClock::from_value(9).to_string(), "9");
    }
}

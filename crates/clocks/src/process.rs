//! Process and state identifiers.

use std::fmt;

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

/// Identifier of a process in a distributed computation.
///
/// Processes are numbered densely from `0` to `N - 1`. The paper writes
/// `P_1 … P_N`; we use zero-based indices so a `ProcessId` can directly
/// index Rust vectors.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over the first `n` process identifiers, `P0 … P(n-1)`.
    ///
    /// ```rust
    /// use wcp_clocks::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n as u32).map(ProcessId)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

impl From<ProcessId> for u32 {
    fn from(p: ProcessId) -> Self {
        p.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

// A `ProcessId` travels on the wire as a bare integer.
impl ToJson for ProcessId {
    fn to_json(&self) -> Json {
        Json::UInt(u64::from(self.0))
    }
}

impl FromJson for ProcessId {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let raw = value.expect_u64()?;
        u32::try_from(raw)
            .map(ProcessId)
            .map_err(|_| JsonError::shape(format!("ProcessId out of range: {raw}")))
    }
}

/// Identifier of a local state (communication interval) of one process.
///
/// Following Figure 2 of the paper, a process's local clock component is
/// incremented only at send and receive events, so the observable "states"
/// are the intervals between communication events. Interval indices are
/// **1-based**: the k-th state of process `P_i` is written `(i, k)` in the
/// paper, and index `0` is reserved for "no state" (the initial value of the
/// candidate cut `G`).
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{ProcessId, StateId};
///
/// let s = StateId::new(ProcessId::new(1), 4);
/// assert_eq!(s.to_string(), "(P1, 4)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId {
    /// The process this state belongs to.
    pub process: ProcessId,
    /// One-based interval index within the process (`0` = no state).
    pub index: u64,
}

impl StateId {
    /// Creates a state identifier for the `index`-th interval of `process`.
    pub const fn new(process: ProcessId, index: u64) -> Self {
        StateId { process, index }
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.process, self.index)
    }
}

impl ToJson for StateId {
    fn to_json(&self) -> Json {
        Json::obj([
            ("process", self.process.to_json()),
            ("index", Json::UInt(self.index)),
        ])
    }
}

impl FromJson for StateId {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(StateId {
            process: ProcessId::from_json(value.field("process")?)?,
            index: value.field("index")?.expect_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(u32::from(p), 7);
        assert_eq!(ProcessId::from(7u32), p);
        assert_eq!(p.index(), 7);
    }

    #[test]
    fn process_id_ordering_matches_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(ProcessId::default(), ProcessId::new(0));
    }

    #[test]
    fn all_yields_dense_range() {
        assert_eq!(ProcessId::all(0).count(), 0);
        let v: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[3].index(), 3);
    }

    #[test]
    fn state_id_display() {
        let s = StateId::new(ProcessId::new(2), 9);
        assert_eq!(format!("{s}"), "(P2, 9)");
    }

    #[test]
    fn state_id_ordering_is_lexicographic() {
        let a = StateId::new(ProcessId::new(0), 5);
        let b = StateId::new(ProcessId::new(1), 1);
        let c = StateId::new(ProcessId::new(1), 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn json_roundtrip() {
        let s = StateId::new(ProcessId::new(3), 11);
        let json = s.to_json().to_string();
        assert_eq!(json, "{\"process\":3,\"index\":11}");
        let back = StateId::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(s, back);
        // ProcessId serializes transparently as a bare integer.
        assert_eq!(ProcessId::new(3).to_json().to_string(), "3");
        assert!(ProcessId::from_json(&Json::UInt(u64::MAX)).is_err());
    }
}

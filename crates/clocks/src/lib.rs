//! Logical-clock substrate for conjunctive-predicate detection.
//!
//! This crate provides the timestamping machinery that the detection
//! algorithms of Garg & Chase (*Distributed Algorithms for Detecting
//! Conjunctive Predicates*, ICDCS 1995) are built on:
//!
//! - [`ProcessId`] and [`StateId`] — identifiers for processes and for the
//!   communication intervals ("states") of a process execution,
//! - [`VectorClock`] — Fidge/Mattern vector clocks, used by the paper's
//!   vector-clock token algorithm (Section 3),
//! - [`ClockArena`] and [`ClockRow`] — flat stride-`n` storage for large
//!   sets of same-width clocks (one allocation for a whole snapshot run
//!   instead of one per clock), with the same comparison API,
//! - [`ScalarClock`] and [`Dependence`] — the per-process logical counter and
//!   direct-dependence records used by the direct-dependence algorithm
//!   (Section 4),
//! - [`Cut`] — a global cut: one interval index per process, with `0`
//!   denoting "no state selected yet" exactly as in the paper's `G` vector,
//! - [`scoped_workers`] and [`strided`] ([`par`]) — the deterministic
//!   scoped worker-pool / strided-partition recipe shared by every parallel
//!   path built on this substrate.
//!
//! # Example
//!
//! ```rust
//! use wcp_clocks::{ProcessId, VectorClock, CausalOrder};
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//!
//! // Two processes; p0 sends to p1.
//! let mut a = VectorClock::new(2); // clock at p0
//! let mut b = VectorClock::new(2); // clock at p1
//! a.init_process(p0);
//! b.init_process(p1);
//!
//! let msg = a.clone(); // timestamp carried by the message
//! a.tick(p0);          // p0 advances past the send
//! b.merge(&msg);       // p1 receives
//! b.tick(p1);
//!
//! assert_eq!(msg.causal_order(&b), CausalOrder::Before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cut;
mod dependence;
pub mod par;
mod process;
mod scalar;
mod vector;

pub use arena::{slice_causal_order, ClockArena, ClockRow};
pub use cut::Cut;
pub use dependence::{Dependence, DependenceList};
pub use par::{scoped_workers, strided};
pub use process::{ProcessId, StateId};
pub use scalar::ScalarClock;
pub use vector::{CausalOrder, VectorClock};

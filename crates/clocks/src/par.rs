//! Scoped worker-pool and work-partitioning helpers.
//!
//! Every parallel path in the workspace follows the same recipe: spawn `t`
//! scoped workers, give worker `w` the strided slice `w, w + t, w + 2t, …`
//! of some index space, and join the workers **in worker order** so the
//! fold over their results is deterministic. This module is that recipe in
//! one place — the snapshot-queue build, the session pump shards, and the
//! work-optimal parallel detector all partition through it, so the
//! bit-identity argument ("worker assignment cannot change the merged
//! result") is made once.

/// Runs `work(w)` for `w ∈ 0..threads` on scoped threads and returns the
/// results **indexed by worker** (`out[w] == work(w)`), so folding the
/// results is independent of thread scheduling.
///
/// With `threads <= 1` the single unit runs on the calling thread — the
/// serial fallback shares the exact code path of the parallel one, which is
/// what makes "bit-identical at every thread count" hold by construction
/// for callers whose `work` is a pure function of its worker index.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn scoped_workers<R, F>(threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 {
        return vec![work(0)];
    }
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || work(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped worker panicked"))
            .collect()
    })
}

/// Worker `first`'s strided share of the index space `0..total` under
/// `step` workers: `first, first + step, first + 2·step, …`.
///
/// Strided ownership balances load when per-index cost drifts along the
/// index space, and the shares of `step` workers partition `0..total`
/// exactly.
///
/// # Panics
///
/// Panics if `step == 0`.
pub fn strided(first: usize, step: usize, total: usize) -> impl Iterator<Item = usize> {
    assert!(step >= 1, "stride step must be at least 1");
    (first..total).step_by(step)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_worker() {
        for threads in 1..=8 {
            let out = scoped_workers(threads, |w| w * 10);
            assert_eq!(out, (0..threads.max(1)).map(|w| w * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_runs_one_unit_on_the_caller() {
        assert_eq!(scoped_workers(0, |w| w + 1), vec![1]);
    }

    #[test]
    fn strided_shares_partition_the_space() {
        for step in 1..=5 {
            for total in 0..20 {
                let mut seen = vec![false; total];
                for first in 0..step {
                    for i in strided(first, step, total) {
                        assert!(!seen[i], "index {i} owned twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "step {step} total {total}");
            }
        }
    }

    #[test]
    fn strided_is_ascending() {
        let share: Vec<usize> = strided(2, 3, 14).collect();
        assert_eq!(share, vec![2, 5, 8, 11]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_step_panics() {
        let _ = strided(0, 0, 4).count();
    }
}

//! Global cuts: one interval index per process.

use std::fmt;
use std::ops::Index;

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

use crate::{ProcessId, StateId};

/// A global cut: for each process, the index of one local state (interval).
///
/// This is the paper's `G` vector. Entries are 1-based interval indices;
/// `0` means "no state selected yet for this process" (the initial value of
/// the candidate cut in both detection algorithms).
///
/// A cut is only a *candidate*; whether it is consistent (all states pairwise
/// concurrent) is a property checked against a computation's clocks — see
/// `wcp_trace::AnnotatedComputation::is_consistent`.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{Cut, ProcessId};
///
/// let mut cut = Cut::new(3);
/// assert!(!cut.is_complete());
/// cut.set(ProcessId::new(0), 2);
/// cut.set(ProcessId::new(1), 1);
/// cut.set(ProcessId::new(2), 4);
/// assert!(cut.is_complete());
/// assert_eq!(cut.to_string(), "⟨2,1,4⟩");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    states: Vec<u64>,
}

// A `Cut` travels on the wire as a bare array of interval indices.
impl ToJson for Cut {
    fn to_json(&self) -> Json {
        Json::Arr(self.states.iter().map(|&s| Json::UInt(s)).collect())
    }
}

impl FromJson for Cut {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let states = value
            .expect_array()?
            .iter()
            .map(Json::expect_u64)
            .collect::<Result<Vec<u64>, JsonError>>()?;
        Ok(Cut { states })
    }
}

impl Cut {
    /// Creates the empty cut (`∀i: G[i] = 0`) over `n` processes.
    pub fn new(n: usize) -> Self {
        Cut { states: vec![0; n] }
    }

    /// Creates a cut from explicit per-process interval indices.
    pub fn from_indices(states: Vec<u64>) -> Self {
        Cut { states }
    }

    /// Number of processes the cut ranges over.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the cut ranges over zero processes.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns the interval index selected for `p` (`0` = none).
    pub fn get(&self, p: ProcessId) -> Option<u64> {
        self.states.get(p.index()).copied()
    }

    /// Selects interval `index` for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: ProcessId, index: u64) {
        self.states[p.index()] = index;
    }

    /// `true` iff every process has a state selected (`∀i: G[i] ≥ 1`).
    pub fn is_complete(&self) -> bool {
        self.states.iter().all(|&s| s >= 1)
    }

    /// Iterates over the selected states as [`StateId`]s (including `index 0`
    /// placeholders).
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, &k)| StateId::new(ProcessId::new(i as u32), k))
    }

    /// Read-only view of the raw indices.
    pub fn as_slice(&self) -> &[u64] {
        &self.states
    }

    /// Componentwise `≤` — cut `self` is no later than `other` on every
    /// process. The first satisfying cut is the unique minimum under this
    /// order (Theorems 3.2 / 4.3).
    pub fn le(&self, other: &Cut) -> bool {
        assert_eq!(self.states.len(), other.states.len());
        self.states.iter().zip(&other.states).all(|(a, b)| a <= b)
    }

    /// Componentwise minimum of two cuts.
    pub fn meet(&self, other: &Cut) -> Cut {
        assert_eq!(self.states.len(), other.states.len());
        Cut {
            states: self
                .states
                .iter()
                .zip(&other.states)
                .map(|(a, b)| *a.min(b))
                .collect(),
        }
    }

    /// Componentwise maximum of two cuts.
    pub fn join(&self, other: &Cut) -> Cut {
        assert_eq!(self.states.len(), other.states.len());
        Cut {
            states: self
                .states
                .iter()
                .zip(&other.states)
                .map(|(a, b)| *a.max(b))
                .collect(),
        }
    }

    /// Total number of local states at or before this cut (Σ `G[i]`); a useful
    /// progress measure for the detection algorithms.
    pub fn weight(&self) -> u64 {
        self.states.iter().sum()
    }
}

impl Index<ProcessId> for Cut {
    type Output = u64;

    fn index(&self, p: ProcessId) -> &u64 {
        &self.states[p.index()]
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<u64> for Cut {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Cut {
            states: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(v: &[u64]) -> Cut {
        Cut::from_indices(v.to_vec())
    }

    #[test]
    fn new_is_empty_cut() {
        let c = Cut::new(3);
        assert_eq!(c.as_slice(), &[0, 0, 0]);
        assert!(!c.is_complete());
        assert_eq!(c.weight(), 0);
    }

    #[test]
    fn set_get_index() {
        let mut c = Cut::new(2);
        c.set(ProcessId::new(1), 5);
        assert_eq!(c.get(ProcessId::new(1)), Some(5));
        assert_eq!(c[ProcessId::new(1)], 5);
        assert_eq!(c.get(ProcessId::new(2)), None);
    }

    #[test]
    fn complete_requires_all_nonzero() {
        assert!(cut(&[1, 1]).is_complete());
        assert!(!cut(&[1, 0]).is_complete());
    }

    #[test]
    fn le_meet_join() {
        let a = cut(&[1, 3]);
        let b = cut(&[2, 2]);
        assert!(!a.le(&b) && !b.le(&a));
        assert_eq!(a.meet(&b), cut(&[1, 2]));
        assert_eq!(a.join(&b), cut(&[2, 3]));
        assert!(a.meet(&b).le(&a));
        assert!(a.le(&a.join(&b)));
    }

    #[test]
    fn weight_sums_indices() {
        assert_eq!(cut(&[2, 1, 4]).weight(), 7);
    }

    #[test]
    fn iter_yields_state_ids() {
        let ids: Vec<_> = cut(&[2, 0]).iter().collect();
        assert_eq!(ids[0], StateId::new(ProcessId::new(0), 2));
        assert_eq!(ids[1], StateId::new(ProcessId::new(1), 0));
    }

    #[test]
    fn display_uses_angle_brackets() {
        assert_eq!(cut(&[2, 1]).to_string(), "⟨2,1⟩");
    }

    #[test]
    fn from_iterator() {
        let c: Cut = [1u64, 2, 3].into_iter().collect();
        assert_eq!(c.as_slice(), &[1, 2, 3]);
    }
}

//! Direct-dependence records (Section 4.1 of the paper).

use std::fmt;

use wcp_obs::json::{FromJson, Json, JsonError, ToJson};

use crate::ProcessId;

/// A single direct dependence: "all successive states on the recording
/// process depend on state `clock` of process `on`".
///
/// Recorded by an application process when it receives a message from
/// process `on` tagged with scalar clock value `clock`; it means the sender's
/// states with index `≤ clock` happened before every subsequent local state.
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{Dependence, ProcessId};
///
/// let d = Dependence::new(ProcessId::new(2), 5);
/// assert_eq!(d.to_string(), "(P2, 5)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dependence {
    /// The process the dependence points at (the message sender).
    pub on: ProcessId,
    /// The sender's scalar clock value when the message was sent.
    pub clock: u64,
}

impl Dependence {
    /// Creates a dependence on state `(on, clock)`.
    pub const fn new(on: ProcessId, clock: u64) -> Self {
        Dependence { on, clock }
    }
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.on, self.clock)
    }
}

impl ToJson for Dependence {
    fn to_json(&self) -> Json {
        Json::obj([("on", self.on.to_json()), ("clock", Json::UInt(self.clock))])
    }
}

impl FromJson for Dependence {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Dependence {
            on: ProcessId::from_json(value.field("on")?)?,
            clock: value.field("clock")?.expect_u64()?,
        })
    }
}

/// The linked list of direct dependences an application process accumulates
/// between local snapshots (Section 4.1).
///
/// The list is appended to as messages are received and drained into a local
/// snapshot when a candidate state is reached ("The dependence list is
/// reinitialized to be empty after generating the local snapshot").
///
/// # Example
///
/// ```rust
/// use wcp_clocks::{Dependence, DependenceList, ProcessId};
///
/// let mut list = DependenceList::new();
/// list.record(Dependence::new(ProcessId::new(0), 2));
/// list.record(Dependence::new(ProcessId::new(1), 7));
/// let snapshot_deps = list.drain();
/// assert_eq!(snapshot_deps.len(), 2);
/// assert!(list.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependenceList {
    entries: Vec<Dependence>,
}

// A `DependenceList` travels on the wire as a bare array of dependences.
impl ToJson for DependenceList {
    fn to_json(&self) -> Json {
        Json::Arr(self.entries.iter().map(Dependence::to_json).collect())
    }
}

impl FromJson for DependenceList {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let entries = value
            .expect_array()?
            .iter()
            .map(Dependence::from_json)
            .collect::<Result<Vec<Dependence>, JsonError>>()?;
        Ok(DependenceList { entries })
    }
}

impl DependenceList {
    /// Creates an empty dependence list.
    pub fn new() -> Self {
        DependenceList::default()
    }

    /// Records one dependence (a message receipt).
    pub fn record(&mut self, dep: Dependence) {
        self.entries.push(dep);
    }

    /// Number of recorded dependences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no dependences are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes all recorded dependences, leaving the list empty (the snapshot
    /// rule of Section 4.1).
    pub fn drain(&mut self) -> Vec<Dependence> {
        std::mem::take(&mut self.entries)
    }

    /// Iterates over the recorded dependences in receipt order.
    pub fn iter(&self) -> impl Iterator<Item = &Dependence> {
        self.entries.iter()
    }

    /// Read-only view of the entries.
    pub fn as_slice(&self) -> &[Dependence] {
        &self.entries
    }

    /// Size of this list in bytes when transmitted: a dependence is "a pair
    /// of integers" (Section 4.4); we use two `u64`s.
    pub fn wire_size(&self) -> usize {
        self.entries.len() * 16
    }
}

impl Extend<Dependence> for DependenceList {
    fn extend<T: IntoIterator<Item = Dependence>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

impl FromIterator<Dependence> for DependenceList {
    fn from_iter<T: IntoIterator<Item = Dependence>>(iter: T) -> Self {
        DependenceList {
            entries: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for DependenceList {
    type Item = Dependence;
    type IntoIter = std::vec::IntoIter<Dependence>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(p: u32, k: u64) -> Dependence {
        Dependence::new(ProcessId::new(p), k)
    }

    #[test]
    fn record_and_drain_resets() {
        let mut list = DependenceList::new();
        assert!(list.is_empty());
        list.record(dep(0, 1));
        list.record(dep(1, 3));
        assert_eq!(list.len(), 2);
        let drained = list.drain();
        assert_eq!(drained, vec![dep(0, 1), dep(1, 3)]);
        assert!(list.is_empty());
    }

    #[test]
    fn preserves_receipt_order() {
        let list: DependenceList = [dep(2, 9), dep(0, 1), dep(2, 10)].into_iter().collect();
        let order: Vec<_> = list.iter().copied().collect();
        assert_eq!(order, vec![dep(2, 9), dep(0, 1), dep(2, 10)]);
    }

    #[test]
    fn extend_appends() {
        let mut list = DependenceList::new();
        list.extend([dep(0, 1)]);
        list.extend([dep(1, 2), dep(2, 3)]);
        assert_eq!(list.len(), 3);
        assert_eq!(list.as_slice()[2], dep(2, 3));
    }

    #[test]
    fn wire_size_is_sixteen_bytes_per_entry() {
        let list: DependenceList = [dep(0, 1), dep(1, 2)].into_iter().collect();
        assert_eq!(list.wire_size(), 32);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(dep(3, 4).to_string(), "(P3, 4)");
    }

    #[test]
    fn json_roundtrip() {
        let list: DependenceList = [dep(0, 1)].into_iter().collect();
        let json = list.to_json().to_string();
        assert_eq!(json, "[{\"on\":0,\"clock\":1}]");
        let back = DependenceList::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, list);
    }
}

//! Randomized property tests for the logical-clock substrate.
//!
//! Deterministic seeded loops over `wcp_obs::rng::Rng` stand in for an
//! external property-testing framework: each property is checked on a few
//! hundred random inputs from a fixed seed, so failures are reproducible.

use wcp_clocks::{CausalOrder, Cut, ProcessId, VectorClock};
use wcp_obs::rng::Rng;

const CASES: usize = 300;

fn rand_clock(rng: &mut Rng, width: usize, max: u64) -> VectorClock {
    VectorClock::from_components((0..width).map(|_| rng.gen_range(0..=max)).collect())
}

fn rand_cut(rng: &mut Rng, width: usize, max: u64) -> Cut {
    Cut::from_indices((0..width).map(|_| rng.gen_range(0..=max)).collect())
}

/// causal_order is antisymmetric: Before in one direction iff After in the
/// other, Concurrent/Equal are symmetric.
#[test]
fn causal_order_antisymmetry() {
    let mut rng = Rng::seed_from_u64(0xC10C0);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 4, 8);
        let b = rand_clock(&mut rng, 4, 8);
        let ab = a.causal_order(&b);
        let ba = b.causal_order(&a);
        let expected = match ab {
            CausalOrder::Before => CausalOrder::After,
            CausalOrder::After => CausalOrder::Before,
            other => other,
        };
        assert_eq!(ba, expected, "a={a} b={b}");
    }
}

/// happened-before is transitive.
#[test]
fn happened_before_transitive() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 3, 6);
        let b = rand_clock(&mut rng, 3, 6);
        let c = rand_clock(&mut rng, 3, 6);
        if a.happened_before(&b) && b.happened_before(&c) {
            assert!(a.happened_before(&c), "a={a} b={b} c={c}");
        }
    }
}

/// happened-before is irreflexive.
#[test]
fn happened_before_irreflexive() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 5, 10);
        assert!(!a.happened_before(&a), "a={a}");
        assert_eq!(a.causal_order(&a), CausalOrder::Equal);
    }
}

/// join is the least upper bound: an upper bound, and below any other upper
/// bound.
#[test]
fn join_is_lub() {
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 4, 8);
        let b = rand_clock(&mut rng, 4, 8);
        let c = rand_clock(&mut rng, 4, 8);
        let j = a.join(&b);
        assert!(a.le(&j) && b.le(&j), "a={a} b={b}");
        if a.le(&c) && b.le(&c) {
            assert!(j.le(&c), "a={a} b={b} c={c}");
        }
    }
}

/// meet is the greatest lower bound.
#[test]
fn meet_is_glb() {
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 4, 8);
        let b = rand_clock(&mut rng, 4, 8);
        let c = rand_clock(&mut rng, 4, 8);
        let m = a.meet(&b);
        assert!(m.le(&a) && m.le(&b), "a={a} b={b}");
        if c.le(&a) && c.le(&b) {
            assert!(c.le(&m), "a={a} b={b} c={c}");
        }
    }
}

/// join/meet are commutative and associative.
#[test]
fn lattice_algebra() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 3, 8);
        let b = rand_clock(&mut rng, 3, 8);
        let c = rand_clock(&mut rng, 3, 8);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.meet(&b), b.meet(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
    }
}

/// merge makes the receiver dominate the message clock.
#[test]
fn merge_dominates() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 4, 8);
        let b = rand_clock(&mut rng, 4, 8);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(a.le(&merged) && b.le(&merged), "a={a} b={b}");
    }
}

/// Cut meet/join keep the componentwise order, and are modular in weight.
#[test]
fn cut_lattice() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..CASES {
        let a = rand_cut(&mut rng, 4, 10);
        let b = rand_cut(&mut rng, 4, 10);
        let m = a.meet(&b);
        let j = a.join(&b);
        assert!(m.le(&a) && m.le(&b), "a={a} b={b}");
        assert!(a.le(&j) && b.le(&j), "a={a} b={b}");
        assert_eq!(m.weight() + j.weight(), a.weight() + b.weight());
    }
}

/// A ticked clock strictly follows the original.
#[test]
fn tick_advances() {
    let mut rng = Rng::seed_from_u64(8);
    for _ in 0..CASES {
        let a = rand_clock(&mut rng, 4, 8);
        let p = rng.gen_range(0u32..4);
        let mut t = a.clone();
        t.tick(ProcessId::new(p));
        assert!(a.happened_before(&t), "a={a} p={p}");
    }
}

//! Property-based tests for the logical-clock substrate.

use proptest::prelude::*;
use wcp_clocks::{CausalOrder, Cut, ProcessId, VectorClock};

fn arb_clock(width: usize, max: u64) -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0..=max, width).prop_map(VectorClock::from_components)
}

fn arb_cut(width: usize, max: u64) -> impl Strategy<Value = Cut> {
    proptest::collection::vec(0..=max, width).prop_map(Cut::from_indices)
}

proptest! {
    /// causal_order is antisymmetric: Before in one direction iff After in
    /// the other, Concurrent/Equal are symmetric.
    #[test]
    fn causal_order_antisymmetry(a in arb_clock(4, 8), b in arb_clock(4, 8)) {
        let ab = a.causal_order(&b);
        let ba = b.causal_order(&a);
        let expected = match ab {
            CausalOrder::Before => CausalOrder::After,
            CausalOrder::After => CausalOrder::Before,
            other => other,
        };
        prop_assert_eq!(ba, expected);
    }

    /// happened-before is transitive.
    #[test]
    fn happened_before_transitive(
        a in arb_clock(3, 6),
        b in arb_clock(3, 6),
        c in arb_clock(3, 6),
    ) {
        if a.happened_before(&b) && b.happened_before(&c) {
            prop_assert!(a.happened_before(&c));
        }
    }

    /// happened-before is irreflexive.
    #[test]
    fn happened_before_irreflexive(a in arb_clock(5, 10)) {
        prop_assert!(!a.happened_before(&a));
        prop_assert_eq!(a.causal_order(&a), CausalOrder::Equal);
    }

    /// join is the least upper bound: an upper bound, and below any other
    /// upper bound.
    #[test]
    fn join_is_lub(a in arb_clock(4, 8), b in arb_clock(4, 8), c in arb_clock(4, 8)) {
        let j = a.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
        if a.le(&c) && b.le(&c) {
            prop_assert!(j.le(&c));
        }
    }

    /// meet is the greatest lower bound.
    #[test]
    fn meet_is_glb(a in arb_clock(4, 8), b in arb_clock(4, 8), c in arb_clock(4, 8)) {
        let m = a.meet(&b);
        prop_assert!(m.le(&a));
        prop_assert!(m.le(&b));
        if c.le(&a) && c.le(&b) {
            prop_assert!(c.le(&m));
        }
    }

    /// join/meet are commutative and associative.
    #[test]
    fn lattice_algebra(a in arb_clock(3, 8), b in arb_clock(3, 8), c in arb_clock(3, 8)) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
    }

    /// merge makes the receiver dominate the message clock.
    #[test]
    fn merge_dominates(a in arb_clock(4, 8), b in arb_clock(4, 8)) {
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert!(a.le(&merged));
        prop_assert!(b.le(&merged));
    }

    /// Cut meet/join keep the componentwise order.
    #[test]
    fn cut_lattice(a in arb_cut(4, 10), b in arb_cut(4, 10)) {
        let m = a.meet(&b);
        let j = a.join(&b);
        prop_assert!(m.le(&a) && m.le(&b));
        prop_assert!(a.le(&j) && b.le(&j));
        prop_assert_eq!(m.weight() + j.weight(), a.weight() + b.weight());
    }

    /// A ticked clock strictly follows the original.
    #[test]
    fn tick_advances(a in arb_clock(4, 8), p in 0u32..4) {
        let mut t = a.clone();
        t.tick(ProcessId::new(p));
        prop_assert!(a.happened_before(&t));
    }
}

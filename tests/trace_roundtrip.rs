//! Trace persistence: computations and detection reports serialize to JSON
//! and back without changing any verdict — the workflow of recording a run
//! in production and analyzing it offline.

use wcp::detect::{Detector, TokenDetector};
use wcp::trace::generate::{generate, GeneratorConfig};
use wcp::trace::{Computation, Wcp};

#[test]
fn computation_roundtrips_and_redetects_identically() {
    for seed in 0..10 {
        let cfg = GeneratorConfig::new(5, 12)
            .with_seed(seed)
            .with_predicate_density(0.3);
        let g = generate(&cfg);
        let json = serde_json::to_string(&g.computation).expect("serialize");
        let back: Computation = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, g.computation);
        assert!(back.validate().is_ok());

        let wcp = Wcp::over_first(4);
        let before = TokenDetector::new().detect(&g.computation.annotate(), &wcp);
        let after = TokenDetector::new().detect(&back.annotate(), &wcp);
        assert_eq!(before.detection, after.detection, "seed {seed}");
        assert_eq!(before.metrics, after.metrics, "seed {seed}");
    }
}

#[test]
fn detection_report_roundtrips() {
    let g = generate(&GeneratorConfig::new(4, 8).with_seed(1).with_plant(0.5));
    let wcp = Wcp::over_all(&g.computation);
    let report = TokenDetector::new().detect(&g.computation.annotate(), &wcp);
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let back: wcp::detect::DetectionReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
}

#[test]
fn tampered_trace_fails_validation() {
    let g = generate(&GeneratorConfig::new(3, 6).with_seed(2));
    let json = serde_json::to_string(&g.computation).unwrap();
    let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
    // Orphan one receive by pointing it at a message nobody sends.
    let mut tampered = false;
    'outer: for process in value["processes"].as_array_mut().unwrap() {
        for event in process["events"].as_array_mut().unwrap() {
            if let Some(recv) = event.get_mut("Receive") {
                recv["msg"] = serde_json::json!(9999);
                tampered = true;
                break 'outer;
            }
        }
    }
    assert!(tampered, "generated trace should contain a receive");
    let parsed: Computation = serde_json::from_value(value).unwrap();
    assert!(
        parsed.validate().is_err(),
        "tampering must be caught by validation"
    );
}

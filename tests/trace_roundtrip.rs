//! Trace persistence: computations and detection reports serialize to JSON
//! and back without changing any verdict — the workflow of recording a run
//! in production and analyzing it offline.

use wcp::detect::{Detector, TokenDetector};
use wcp::obs::json::{FromJson, Json, ToJson};
use wcp::trace::generate::{generate, GeneratorConfig};
use wcp::trace::{Computation, Wcp};

#[test]
fn computation_roundtrips_and_redetects_identically() {
    for seed in 0..10 {
        let cfg = GeneratorConfig::new(5, 12)
            .with_seed(seed)
            .with_predicate_density(0.3);
        let g = generate(&cfg);
        let json = g.computation.to_json().to_string();
        let back = Computation::from_json(&Json::parse(&json).expect("parse")).expect("decode");
        assert_eq!(back, g.computation);
        assert!(back.validate().is_ok());

        let wcp = Wcp::over_first(4);
        let before = TokenDetector::new().detect(&g.computation.annotate(), &wcp);
        let after = TokenDetector::new().detect(&back.annotate(), &wcp);
        assert_eq!(before.detection, after.detection, "seed {seed}");
        assert_eq!(before.metrics, after.metrics, "seed {seed}");
    }
}

#[test]
fn detection_report_roundtrips() {
    let g = generate(&GeneratorConfig::new(4, 8).with_seed(1).with_plant(0.5));
    let wcp = Wcp::over_all(&g.computation);
    let report = TokenDetector::new().detect(&g.computation.annotate(), &wcp);
    let json = report.to_json().pretty();
    let back = wcp::detect::DetectionReport::from_json(&Json::parse(&json).expect("parse"))
        .expect("decode");
    assert_eq!(back, report);
}

#[test]
fn tampered_trace_fails_validation() {
    let g = generate(&GeneratorConfig::new(3, 6).with_seed(2));
    let mut value = Json::parse(&g.computation.to_json().to_string()).unwrap();
    // Orphan one receive by pointing it at a message nobody sends.
    let mut tampered = false;
    let Json::Obj(top) = &mut value else {
        panic!("computation should serialize as an object")
    };
    'outer: for (key, processes) in top {
        assert_eq!(key, "processes");
        let Json::Arr(processes) = processes else {
            panic!("processes should be an array")
        };
        for process in processes {
            let Json::Obj(fields) = process else {
                panic!("process should be an object")
            };
            for (name, val) in fields {
                if name != "events" {
                    continue;
                }
                let Json::Arr(events) = val else {
                    panic!("events should be an array")
                };
                for event in events {
                    if let Json::Obj(tagged) = event {
                        if let Some((_, payload)) =
                            tagged.iter_mut().find(|(tag, _)| tag == "Receive")
                        {
                            let Json::Obj(recv) = payload else {
                                panic!("Receive payload should be an object")
                            };
                            for (field, v) in recv {
                                if field == "msg" {
                                    *v = Json::UInt(9999);
                                    tampered = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(tampered, "generated trace should contain a receive");
    let parsed = Computation::from_json(&value).unwrap();
    assert!(
        parsed.validate().is_err(),
        "tampering must be caught by validation"
    );
}

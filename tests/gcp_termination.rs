//! Integration tests for generalized conjunctive predicates: termination
//! detection semantics and agreement with exhaustive lattice search.

use wcp::clocks::ProcessId;
use wcp::detect::{ChannelPredicate, ChannelTerm, Gcp, GcpChecker};
use wcp::obs::rng::Rng;
use wcp::trace::channel::{ChannelId, ChannelIndex};
use wcp::trace::generate::{generate, GeneratorConfig};
use wcp::trace::lattice::LatticeExplorer;
use wcp::trace::Wcp;

/// Termination GCP: all local predicates plus "empty" on every used channel.
fn termination_gcp(computation: &wcp::trace::Computation) -> Gcp {
    let index = ChannelIndex::new(computation);
    let terms: Vec<ChannelTerm> = index
        .channels()
        .map(|channel| ChannelTerm {
            channel,
            predicate: ChannelPredicate::Empty,
        })
        .collect();
    Gcp::new(Wcp::over_all(computation), terms)
}

#[test]
fn termination_cut_is_always_quiescent() {
    for seed in 0..25 {
        let g = generate(
            &GeneratorConfig::new(4, 8)
                .with_seed(seed)
                .with_predicate_density(0.5),
        );
        let gcp = termination_gcp(&g.computation);
        let annotated = g.computation.annotate();
        let report = GcpChecker::new().detect(&annotated, &gcp);
        if let Some(cut) = report.detection.cut() {
            let index = ChannelIndex::new(&g.computation);
            assert_eq!(index.total_in_flight(cut), 0, "seed {seed}: cut {cut}");
            assert!(annotated.is_consistent(cut), "seed {seed}");
            assert!(gcp.wcp().holds_on(&g.computation, cut), "seed {seed}");
        }
    }
}

/// The GCP checker agrees with exhaustive lattice search for random
/// channel-term mixes on random runs.
#[test]
fn gcp_checker_agrees_with_lattice() {
    let mut rng = Rng::seed_from_u64(51);
    for _ in 0..40 {
        let seed = rng.next_u64();
        let density = 0.2 + rng.gen_f64() * 0.6;
        let term_kinds: Vec<u8> = (0..rng.gen_range(0usize..3))
            .map(|_| rng.gen_range(0u32..3) as u8)
            .collect();
        let g = generate(
            &GeneratorConfig::new(3, 6)
                .with_seed(seed)
                .with_predicate_density(density),
        );
        let computation = &g.computation;
        let index = ChannelIndex::new(computation);
        let channels: Vec<ChannelId> = index.channels().collect();
        if channels.is_empty() {
            continue;
        }
        let terms: Vec<ChannelTerm> = term_kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| ChannelTerm {
                channel: channels[i % channels.len()],
                predicate: match kind {
                    0 => ChannelPredicate::Empty,
                    1 => ChannelPredicate::AtMost(1),
                    _ => ChannelPredicate::AtLeast(1),
                },
            })
            .collect();
        let gcp = Gcp::new(Wcp::over_all(computation), terms);

        let annotated = computation.annotate();
        let via_checker = GcpChecker::new().detect(&annotated, &gcp);
        let Ok(via_lattice) = LatticeExplorer::new(computation)
            .first_satisfying_where(|cut| gcp.holds_on(computation, &index, cut), 300_000)
        else {
            continue;
        };
        assert_eq!(
            via_checker.detection.cut().cloned(),
            via_lattice,
            "seed {seed} terms {term_kinds:?}"
        );
    }
}

/// GCP with no channel terms degenerates to plain WCP detection.
#[test]
fn empty_terms_equal_wcp() {
    use wcp::detect::{CentralizedChecker, Detector};
    let mut rng = Rng::seed_from_u64(52);
    for _ in 0..40 {
        let seed = rng.next_u64();
        let g = generate(
            &GeneratorConfig::new(4, 8)
                .with_seed(seed)
                .with_predicate_density(0.3),
        );
        let wcp = Wcp::over_all(&g.computation);
        let gcp = Gcp::new(wcp.clone(), []);
        let annotated = g.computation.annotate();
        let via_gcp = GcpChecker::new().detect(&annotated, &gcp);
        let via_wcp = CentralizedChecker::new().detect(&annotated, &wcp);
        assert_eq!(via_gcp.detection, via_wcp.detection, "seed {seed}");
    }
}

#[test]
fn channel_terms_strictly_strengthen() {
    // Adding channel terms can only delay (or prevent) detection.
    for seed in 0..20 {
        let g = generate(
            &GeneratorConfig::new(4, 8)
                .with_seed(seed)
                .with_predicate_density(0.5),
        );
        let annotated = g.computation.annotate();
        let plain = Gcp::new(Wcp::over_all(&g.computation), []);
        let strict = termination_gcp(&g.computation);
        let plain_cut = GcpChecker::new().detect(&annotated, &plain).detection;
        let strict_cut = GcpChecker::new().detect(&annotated, &strict).detection;
        match (plain_cut.cut(), strict_cut.cut()) {
            (Some(p), Some(s)) => assert!(p.le(s), "seed {seed}: {p} !≤ {s}"),
            (None, Some(s)) => {
                panic!("seed {seed}: stricter predicate detected {s} but plain did not")
            }
            _ => {}
        }
    }
}

#[test]
fn endpoints_validation_is_enforced() {
    let g = generate(&GeneratorConfig::new(3, 4).with_seed(0));
    let result = std::panic::catch_unwind(|| {
        Gcp::new(
            Wcp::over([ProcessId::new(0)]),
            [ChannelTerm {
                channel: ChannelId::new(ProcessId::new(0), ProcessId::new(2)),
                predicate: ChannelPredicate::Empty,
            }],
        )
    });
    assert!(result.is_err(), "out-of-scope endpoint must be rejected");
    drop(g);
}

//! The paper's quantitative claims, checked as hard bounds on randomized
//! runs (Sections 3.4, 4.4, 5). Cases come from fixed seeds via
//! `wcp::obs::rng::Rng`, so failures reproduce exactly.

use wcp::detect::lower_bound::run_optimal_algorithm;
use wcp::detect::{CentralizedChecker, Detector, DirectDependenceDetector, TokenDetector};
use wcp::obs::rng::Rng;
use wcp::trace::generate::{generate, GeneratorConfig};
use wcp::trace::Wcp;

const CASES: usize = 64;

fn rand_cfg(rng: &mut Rng) -> GeneratorConfig {
    let n = rng.gen_range(3usize..7);
    let m = rng.gen_range(3usize..15);
    let mut cfg = GeneratorConfig::new(n, m)
        .with_seed(rng.next_u64())
        .with_predicate_density(0.1 + rng.gen_f64() * 0.5);
    if rng.gen_bool(0.5) {
        cfg = cfg.with_plant(0.2 + rng.gen_f64() * 0.8);
    }
    cfg
}

/// §3.4: the token is sent at most `mn` times, snapshot messages are at
/// most `(m+1)n`, total messages ≤ 2·(m+1)·n, and token/candidate messages
/// are O(n) sized.
#[test]
fn vc_token_message_bounds() {
    let mut rng = Rng::seed_from_u64(41);
    for _ in 0..CASES {
        let cfg = rand_cfg(&mut rng);
        let scope_n = rng.gen_range(2usize..7);
        let g = generate(&cfg);
        let n_total = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n_total));
        let n = wcp.n() as u64;
        // Count intervals, not just events: a process with m events has
        // m + 1 intervals, hence ≤ m + 1 candidate snapshots.
        let m1 = g.computation.max_events_per_process() as u64 + 1;
        let report = TokenDetector::new().detect(&g.computation.annotate(), &wcp);
        assert!(report.metrics.token_hops <= m1 * n, "{cfg:?}");
        assert!(report.metrics.snapshot_messages <= m1 * n, "{cfg:?}");
        assert!(report.metrics.total_messages() <= 2 * m1 * n, "{cfg:?}");
        // Bits: token is 9n bytes, snapshots 8n bytes each.
        assert!(
            report.metrics.control_bytes <= report.metrics.token_hops * 9 * n,
            "{cfg:?}"
        );
        assert_eq!(
            report.metrics.snapshot_bytes,
            report.metrics.snapshot_messages * 8 * n,
            "{cfg:?}"
        );
    }
}

/// §3.4: total token work is O(n²m) — at most 2n component ops per consumed
/// candidate — and per-monitor work divides it by n in the balanced case:
/// max per-process work ≤ 2n·(own candidates), i.e. O(nm), vs the checker's
/// single process carrying everything.
#[test]
fn vc_token_work_bounds() {
    let mut rng = Rng::seed_from_u64(42);
    for _ in 0..CASES {
        let cfg = rand_cfg(&mut rng);
        let scope_n = rng.gen_range(2usize..7);
        let g = generate(&cfg);
        let n_total = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n_total));
        let n = wcp.n() as u64;
        let m1 = g.computation.max_events_per_process() as u64 + 1;
        let annotated = g.computation.annotate();
        let token = TokenDetector::new().detect(&annotated, &wcp);
        assert!(
            token.metrics.total_work() <= 2 * n * n * m1,
            "O(n²m) total: {cfg:?}"
        );
        assert!(
            token.metrics.max_process_work() <= 2 * n * m1,
            "O(nm) per process: {cfg:?}"
        );

        // The checker buffers all snapshots centrally; the token algorithm
        // buffers at most one process's worth anywhere.
        let checker = CentralizedChecker::new().detect(&annotated, &wcp);
        assert!(token.metrics.max_buffered_snapshots <= m1, "{cfg:?}");
        assert_eq!(
            checker.metrics.max_buffered_snapshots, checker.metrics.snapshot_messages,
            "{cfg:?}"
        );
        assert!(
            token.metrics.max_buffered_snapshots <= checker.metrics.max_buffered_snapshots,
            "{cfg:?}"
        );
    }
}

/// §4.4: direct dependence — token hops ≤ (m+1)N, poll+reply pairs bounded
/// by dependences (≤ receives ≤ mN), per-process work O(m), space O(m) per
/// process, and all control messages are O(1)-sized.
#[test]
fn dd_bounds() {
    let mut rng = Rng::seed_from_u64(43);
    for _ in 0..CASES {
        let cfg = rand_cfg(&mut rng);
        let scope_n = rng.gen_range(2usize..7);
        let g = generate(&cfg);
        let n_total = g.computation.process_count() as u64;
        let wcp = Wcp::over_first(scope_n.min(n_total as usize));
        let m1 = g.computation.max_events_per_process() as u64 + 1;
        let report = DirectDependenceDetector::new().detect(&g.computation.annotate(), &wcp);
        assert!(report.metrics.token_hops <= m1 * n_total, "{cfg:?}");
        // control = hops (1 token msg each) + 2 messages per poll; polls ≤
        // total dependences ≤ total receives ≤ mN.
        assert!(
            report.metrics.control_messages <= m1 * n_total + 2 * m1 * n_total,
            "{cfg:?}"
        );
        // Work per process: own candidates (≤ m+1) + own deps (≤ m) +
        // polls sent (≤ m) + polls received (≤ own sends ≤ m).
        assert!(
            report.metrics.max_process_work() <= 4 * m1,
            "O(m) per process: {cfg:?}"
        );
        assert!(
            report.metrics.max_buffered_snapshots <= m1,
            "O(m) space per process: {cfg:?}"
        );
    }
}

/// §1/§4: the headline tradeoff — on full-scope predicates (n = N) the
/// direct-dependence algorithm does asymptotically less total work than the
/// vector-clock token algorithm pays in vector operations.
#[test]
fn dd_beats_vc_on_wide_scopes() {
    let mut rng = Rng::seed_from_u64(44);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let cfg = GeneratorConfig::new(10, 20)
            .with_seed(seed)
            .with_predicate_density(0.3)
            .with_plant(0.8);
        let g = generate(&cfg);
        let annotated = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        let vc = TokenDetector::new().detect(&annotated, &wcp);
        let dd = DirectDependenceDetector::new().detect(&annotated, &wcp);
        assert!(
            dd.metrics.total_work() <= vc.metrics.total_work(),
            "seed {seed}: dd {} > vc {}",
            dd.metrics.total_work(),
            vc.metrics.total_work()
        );
    }
}

/// §5 / Theorem 5.1: the adversary forces ≥ nm − n deletions for every
/// instance size.
#[test]
fn lower_bound_holds() {
    let mut rng = Rng::seed_from_u64(45);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..20);
        let m = rng.gen_range(1u64..50);
        let stats = run_optimal_algorithm(n, m);
        assert!(stats.deletions >= stats.bound, "n={n} m={m}");
        assert!(stats.deletions <= n as u64 * m, "n={n} m={m}");
    }
}

/// §5 corollary: no detector beats the bound — the token detector's
/// candidate consumption on a detecting run never exceeds the total
/// snapshot count (it cannot skip states), and the lower bound says an
/// adversarial run can force ~all of them.
#[test]
fn detectors_consume_at_most_all_candidates() {
    let mut rng = Rng::seed_from_u64(46);
    for _ in 0..CASES {
        let cfg = rand_cfg(&mut rng);
        let g = generate(&cfg);
        let wcp = Wcp::over_all(&g.computation);
        let report = TokenDetector::new().detect(&g.computation.annotate(), &wcp);
        assert!(
            report.metrics.candidates_consumed <= report.metrics.snapshot_messages,
            "{cfg:?}"
        );
    }
}

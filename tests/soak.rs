//! Soak tests: broad randomized sweeps across every topology, scope size,
//! algorithm family, and substrate. The quick variant runs in the normal
//! suite; the heavy variant (hundreds of configurations) is `#[ignore]`d —
//! run it with `cargo test --release -- --ignored`.

use wcp::detect::online::{run_direct, run_vc_token};
use wcp::detect::{
    CentralizedChecker, Detector, DirectDependenceDetector, MultiTokenDetector, TokenDetector,
};
use wcp::sim::SimConfig;
use wcp::trace::generate::{generate, GeneratorConfig, Topology};
use wcp::trace::Wcp;

fn topologies() -> Vec<Topology> {
    vec![
        Topology::Uniform,
        Topology::Ring,
        Topology::ClientServer { servers: 2 },
        Topology::Neighbors { degree: 2 },
        Topology::Phased { phase_len: 2 },
    ]
}

/// One configuration: every offline family agrees with ground truth, and
/// one online run agrees too.
fn check_config(n: usize, m: usize, seed: u64, topology: Topology, scope_n: usize, online: bool) {
    let cfg = GeneratorConfig::new(n, m)
        .with_seed(seed)
        .with_topology(topology)
        .with_predicate_density(0.25);
    let g = generate(&cfg);
    let annotated = g.computation.annotate();
    let wcp = Wcp::over_first(scope_n.min(n));
    let truth = annotated
        .first_satisfying_cut(&wcp)
        .map(|c| wcp.project(&c));

    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(CentralizedChecker::new()),
        Box::new(TokenDetector::new()),
        Box::new(MultiTokenDetector::new(2)),
        Box::new(DirectDependenceDetector::new()),
    ];
    for d in &detectors {
        let got = d.detect(&annotated, &wcp);
        assert_eq!(
            got.detection.cut().map(|c| wcp.project(c)),
            truth,
            "{} n={n} m={m} seed={seed} {topology:?} scope={scope_n}",
            d.name()
        );
    }
    if online {
        let vc = run_vc_token(&g.computation, &wcp, SimConfig::seeded(seed));
        assert_eq!(vc.report.detection.cut().map(|c| wcp.project(c)), truth);
        let dd = run_direct(
            &g.computation,
            &wcp,
            SimConfig::seeded(seed),
            seed.is_multiple_of(2),
        );
        assert_eq!(dd.report.detection.cut().map(|c| wcp.project(c)), truth);
    }
}

#[test]
fn quick_soak() {
    for (i, topology) in topologies().into_iter().enumerate() {
        for seed in 0..3u64 {
            check_config(5, 8, seed * 17 + i as u64, topology, 4, seed == 0);
        }
    }
}

#[test]
#[ignore = "heavy: hundreds of configurations; run with --release -- --ignored"]
fn heavy_soak() {
    let mut configs = 0u32;
    for topology in topologies() {
        for n in [3usize, 6, 10] {
            for m in [5usize, 15, 40] {
                for seed in 0..4u64 {
                    for scope_n in [2usize, n / 2 + 1, n] {
                        let online = configs.is_multiple_of(7);
                        check_config(n, m, seed * 101 + configs as u64, topology, scope_n, online);
                        configs += 1;
                    }
                }
            }
        }
    }
    assert!(configs >= 500, "expected a broad sweep, got {configs}");
}

//! Causal-merge property tests for the telemetry plane.
//!
//! The simulator is single-threaded, so one shared ring records the
//! ground-truth delivery order of an online run. The telemetry plane
//! instead ships one stream per peer and reconstructs a global timeline
//! with `wcp_obs::merge_streams`. These tests pin the contract between
//! the two views:
//!
//! - the merge is a permutation of the ground-truth recording;
//! - every per-process stream survives as a subsequence;
//! - cross-tick pairs (events with different effective logical times)
//!   keep their ground-truth delivery order;
//! - same-tick (concurrent) events use exactly the documented
//!   deterministic tie-break — `(effective time, source, position)`.
//!
//! The last section replays the same properties over the real wire:
//! loopback peers under seeded fault schedules, with the collector's
//! merged timeline standing in for the shared ring.

use std::sync::Arc;

use wcp_detect::online::run_vc_token_recorded;
use wcp_net::{run_vc_token_net_observed, NetConfig, TelemetryCollector};
use wcp_obs::{
    merge_streams, split_by_monitor, LogicalTime, NullRecorder, RingRecorder, RunReport,
    StampedEvent,
};
use wcp_sim::{FaultConfig, LatencyModel, SimConfig};
use wcp_trace::generate::{generate, GeneratorConfig};
use wcp_trace::{Computation, Wcp};

fn workload(seed: u64) -> Computation {
    generate(
        &GeneratorConfig::new(4, 8)
            .with_seed(seed)
            .with_predicate_density(0.3)
            .with_plant(0.6),
    )
    .computation
}

/// Effective logical time per event of an interleaved recording: the
/// running maximum of tick values *within each monitor's sub-stream*
/// (untimed transport events inherit their per-stream predecessor), the
/// same rule `merge_streams` applies after the split.
fn effective_times(events: &[StampedEvent]) -> Vec<u64> {
    let mut latest: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    events
        .iter()
        .map(|e| {
            let slot = latest.entry(e.monitor).or_insert(0);
            if !matches!(e.time, LogicalTime::Unknown) {
                *slot = (*slot).max(e.time.value());
            }
            *slot
        })
        .collect()
}

/// `(monitor, time, event)` — the identity of an event modulo the `seq`
/// restamping `split_by_monitor` performs.
fn key(e: &StampedEvent) -> (u32, LogicalTime, wcp_obs::TraceEvent) {
    (e.monitor, e.time, e.event.clone())
}

/// Ground truth from one simulated online run: the shared ring's events
/// in true delivery order.
fn simulated_ground_truth(seed: u64, latency: LatencyModel) -> Vec<StampedEvent> {
    let computation = workload(seed);
    let wcp = Wcp::over_first(3);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    run_vc_token_recorded(
        &computation,
        &wcp,
        SimConfig::seeded(seed).with_latency(latency),
        ring.clone(),
    );
    assert_eq!(ring.dropped(), 0, "ring capacity too small for the test");
    ring.events()
}

#[test]
fn merge_reconstructs_simulator_delivery_order() {
    let latencies = [
        LatencyModel::Fixed { ticks: 0 },
        LatencyModel::Fixed { ticks: 3 },
        LatencyModel::Uniform { min: 1, max: 10 },
        LatencyModel::Uniform { min: 0, max: 25 },
    ];
    for seed in 0..8u64 {
        for latency in latencies {
            let ground = simulated_ground_truth(seed, latency);
            assert!(!ground.is_empty());
            let streams = split_by_monitor(&ground);
            let borrowed: Vec<(u32, &[StampedEvent])> =
                streams.iter().map(|(m, s)| (*m, s.as_slice())).collect();
            let merged = merge_streams(&borrowed);

            // Permutation: same length, and each monitor's projection is
            // identical (which also proves every per-process stream is a
            // subsequence of the merge).
            assert_eq!(merged.len(), ground.len(), "seed {seed} {latency:?}");
            for (monitor, stream) in &streams {
                let projected: Vec<_> = merged
                    .iter()
                    .filter(|e| e.monitor == *monitor)
                    .map(key)
                    .collect();
                let original: Vec<_> = stream.iter().map(key).collect();
                assert_eq!(projected, original, "seed {seed} {latency:?} P{monitor}");
            }

            // The simulator delivers in tick order, so ground-truth
            // effective times never decrease...
            let ground_eff = effective_times(&ground);
            assert!(
                ground_eff.windows(2).all(|w| w[0] <= w[1]),
                "seed {seed} {latency:?}: delivery order not tick-monotone"
            );

            // ...and therefore the merge — a stable sort by (effective
            // time, source, position) — equals ground truth exactly, up
            // to the documented same-tick tie-break.
            let mut expected: Vec<(u64, u32, usize, &StampedEvent)> = Vec::new();
            let mut pos: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
            for (e, &eff) in ground.iter().zip(&ground_eff) {
                let at = pos.entry(e.monitor).or_insert(0);
                expected.push((eff, e.monitor, *at, e));
                *at += 1;
            }
            expected.sort_by_key(|&(eff, src, at, _)| (eff, src, at));
            let expected_keys: Vec<_> = expected.iter().map(|&(_, _, _, e)| key(e)).collect();
            let merged_keys: Vec<_> = merged.iter().map(key).collect();
            assert_eq!(merged_keys, expected_keys, "seed {seed} {latency:?}");

            // Cross-tick pairs specifically: different effective times
            // always appear in ground-truth (delivery) order.
            let merged_eff = effective_times(&merged);
            assert!(
                merged_eff.windows(2).all(|w| w[0] <= w[1]),
                "seed {seed} {latency:?}: merged timeline not causally ordered"
            );
        }
    }
}

#[test]
fn merged_wire_timelines_stay_causal_under_fault_schedules() {
    let schedules = [
        None,
        Some(FaultConfig::delay_duplicate_reorder(7)),
        Some(FaultConfig::seeded(9).with_drop(0.15).with_reset(0.05)),
    ];
    for (i, faults) in schedules.into_iter().enumerate() {
        let computation = workload(40 + i as u64);
        let wcp = Wcp::over_first(3);
        let mut config = NetConfig::loopback();
        if let Some(f) = faults {
            config = config.with_faults(f);
        }
        let collector = TelemetryCollector::shared();
        let report = run_vc_token_net_observed(
            &computation,
            &wcp,
            config,
            Arc::new(NullRecorder),
            collector.clone(),
        );
        let merged = collector.merged();

        // Nothing was lost or corrupted on the sidecar channel: the merge
        // holds exactly the events the collector ingested, from every peer.
        assert_eq!(collector.malformed(), 0, "schedule {i}");
        assert_eq!(collector.events_collected(), merged.len(), "schedule {i}");
        assert_eq!(collector.source_stats().len(), wcp.n(), "schedule {i}");

        // Each peer's stream survives as a subsequence: its ring seq
        // numbers appear strictly increasing inside the merge.
        for peer in 0..wcp.n() as u32 {
            let seqs: Vec<u64> = merged
                .iter()
                .filter(|e| e.monitor == peer)
                .map(|e| e.seq)
                .collect();
            assert!(!seqs.is_empty(), "schedule {i}: no events from P{peer}");
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "schedule {i}: P{peer} stream reordered by the merge"
            );
        }

        // The merge is causally ordered even though deltas arrive
        // interleaved and fault-delayed.
        let eff = effective_times(&merged);
        assert!(
            eff.windows(2).all(|w| w[0] <= w[1]),
            "schedule {i}: merged wire timeline not causally ordered"
        );

        // And the merged timeline tells the same story as the run itself.
        let folded = RunReport::from_events(&merged);
        assert_eq!(
            folded.detected_cut.is_some(),
            matches!(
                report.report.detection,
                wcp_detect::Detection::Detected { .. }
            ),
            "schedule {i}: merged timeline disagrees with the verdict"
        );
    }
}

//! Regression corpus replay: every case pinned under `tests/corpus/` is a
//! shrunk repro of a bug once found by the differential fuzzer (or a
//! degenerate shape worth guarding). Each must (a) still parse — schema
//! drift in `FuzzCase` JSON fails loudly here — and (b) run the full
//! detector battery without a single divergence.

use std::fs;
use std::path::PathBuf;

use wcp::fuzz::{check_case, parse_corpus_entry, CheckOptions};
use wcp::obs::json::Json;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/corpus/ must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

/// The corpus is committed non-empty: an empty corpus would silently turn
/// this suite into a no-op.
#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_files().is_empty(),
        "tests/corpus/ contains no .json cases"
    );
}

/// Schema drift guard: every corpus file parses under the current
/// `wcp-fuzz-case-v1` schema. A failure here means a `FuzzCase` field
/// changed shape — migrate the corpus, don't delete it.
#[test]
fn every_corpus_case_parses() {
    for path in corpus_files() {
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let json =
            Json::parse(&text).unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        let (case, note) = parse_corpus_entry(&json)
            .unwrap_or_else(|e| panic!("{}: schema drift: {e}", path.display()));
        assert!(
            case.is_realizable(),
            "{}: unrealizable case",
            path.display()
        );
        assert!(
            !note.is_empty(),
            "{}: corpus case needs a note",
            path.display()
        );
    }
}

/// Replay: every pinned repro runs the full battery divergence-free. If a
/// fixed bug regresses, its minimal repro fails right here with the
/// divergence report.
#[test]
fn every_corpus_case_replays_clean() {
    for path in corpus_files() {
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let (case, note) = parse_corpus_entry(&Json::parse(&text).unwrap()).unwrap();
        // Full battery plus the paper-bound auditor: pinned repros must
        // also stay inside the §3.4 message/bit/latency bounds.
        let opts = CheckOptions {
            audit_bounds: true,
            ..CheckOptions::default()
        };
        let divergences = check_case(&case, &opts);
        assert!(
            divergences.is_empty(),
            "{} regressed ({note}):\n{}",
            path.display(),
            divergences
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

//! End-to-end runs on real OS threads: the full stack (application actors,
//! monitors, token/poll protocols) with genuine concurrency, repeated to
//! shake out races, checked against the offline emulation.

use wcp::detect::online::{run_direct_threaded, run_vc_token_threaded};
use wcp::detect::{Detector, DirectDependenceDetector, TokenDetector};
use wcp::trace::generate::{generate, GeneratorConfig, Topology};
use wcp::trace::Wcp;

#[test]
fn threaded_vc_token_stable_across_repetitions() {
    let cfg = GeneratorConfig::new(6, 12)
        .with_seed(41)
        .with_predicate_density(0.25)
        .with_plant(0.7);
    let g = generate(&cfg);
    let wcp = Wcp::over_first(5);
    let expected = TokenDetector::new()
        .detect(&g.computation.annotate(), &wcp)
        .detection;
    for round in 0..20 {
        let got = run_vc_token_threaded(&g.computation, &wcp);
        assert_eq!(got, expected, "round {round}");
    }
}

#[test]
fn threaded_direct_stable_across_repetitions() {
    let cfg = GeneratorConfig::new(5, 10)
        .with_seed(17)
        .with_predicate_density(0.3);
    let g = generate(&cfg);
    let wcp = Wcp::over_first(4);
    let expected = DirectDependenceDetector::new()
        .detect(&g.computation.annotate(), &wcp)
        .detection;
    for round in 0..20 {
        for parallel in [false, true] {
            let got = run_direct_threaded(&g.computation, &wcp, parallel);
            assert_eq!(got, expected, "round {round} parallel {parallel}");
        }
    }
}

#[test]
fn threaded_runs_across_topologies_and_seeds() {
    for (i, topology) in [
        Topology::Uniform,
        Topology::Ring,
        Topology::ClientServer { servers: 2 },
        Topology::Neighbors { degree: 2 },
    ]
    .into_iter()
    .enumerate()
    {
        for seed in 0..4u64 {
            let cfg = GeneratorConfig::new(6, 8)
                .with_seed(seed * 31 + i as u64)
                .with_topology(topology)
                .with_predicate_density(0.3);
            let g = generate(&cfg);
            let wcp = Wcp::over_first(6);
            let annotated = g.computation.annotate();
            let vc_expected = TokenDetector::new().detect(&annotated, &wcp).detection;
            let dd_expected = DirectDependenceDetector::new()
                .detect(&annotated, &wcp)
                .detection;
            assert_eq!(
                run_vc_token_threaded(&g.computation, &wcp),
                vc_expected,
                "vc {topology:?} seed {seed}"
            );
            assert_eq!(
                run_direct_threaded(&g.computation, &wcp, true),
                dd_expected,
                "dd {topology:?} seed {seed}"
            );
        }
    }
}

#[test]
fn threaded_undetected_terminates() {
    // No predicate is ever true: every substrate must terminate with
    // Undetected rather than hang.
    let cfg = GeneratorConfig::new(4, 10)
        .with_seed(3)
        .with_predicate_density(0.0);
    let g = generate(&cfg);
    let wcp = Wcp::over_first(4);
    assert!(!run_vc_token_threaded(&g.computation, &wcp).is_detected());
    assert!(!run_direct_threaded(&g.computation, &wcp, false).is_detected());
    assert!(!run_direct_threaded(&g.computation, &wcp, true).is_detected());
}

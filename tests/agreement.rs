//! Cross-crate agreement suite: every detector family — offline emulations,
//! online simulated actors, threaded actors, and the lattice ground truth —
//! must report the same detection verdict and the same scope projection of
//! the first satisfying cut, on randomized computations (Theorems 3.2, 4.3,
//! 4.4 of the paper).

use proptest::prelude::*;
use wcp::detect::online::{run_direct, run_multi_token, run_vc_token};
use wcp::detect::{
    CentralizedChecker, Detection, Detector, DirectDependenceDetector, LatticeDetector,
    MultiTokenDetector, TokenDetector,
};
use wcp::sim::{LatencyModel, SimConfig};
use wcp::trace::generate::{generate, GeneratorConfig, Topology};
use wcp::trace::Wcp;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..6,
        2usize..10,
        0.2f64..0.9,
        0.05f64..0.5,
        any::<u64>(),
        prop_oneof![
            Just(Topology::Uniform),
            Just(Topology::Ring),
            (1usize..3).prop_map(|d| Topology::Neighbors { degree: d }),
        ],
        proptest::option::of(0.0f64..1.0),
    )
        .prop_map(|(n, m, sf, pd, seed, topo, plant)| {
            let mut cfg = GeneratorConfig::new(n, m)
                .with_seed(seed)
                .with_send_fraction(sf)
                .with_predicate_density(pd)
                .with_topology(topo);
            if let Some(f) = plant {
                cfg = cfg.with_plant(f);
            }
            cfg
        })
}

/// Extracts the scope projection, or `None` if undetected.
fn projected(wcp: &Wcp, detection: &Detection) -> Option<Vec<u64>> {
    detection.cut().map(|c| wcp.project(c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All offline detectors agree with the ground truth, for full and
    /// partial scopes.
    #[test]
    fn offline_families_agree(cfg in arb_config(), scope_n in 1usize..6) {
        let g = generate(&cfg);
        let annotated = g.computation.annotate();
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));

        let truth = annotated
            .first_satisfying_cut(&wcp)
            .map(|c| wcp.project(&c));

        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(CentralizedChecker::new()),
            Box::new(TokenDetector::new().with_invariant_checks()),
            Box::new(TokenDetector::new().with_start(wcp.n() - 1)),
            Box::new(MultiTokenDetector::new(2)),
            Box::new(MultiTokenDetector::new(3)),
            Box::new(DirectDependenceDetector::new().with_invariant_checks()),
        ];
        for d in &detectors {
            let report = d.detect(&annotated, &wcp);
            prop_assert_eq!(
                projected(&wcp, &report.detection),
                truth.clone(),
                "{} disagrees with ground truth",
                d.name()
            );
        }
    }

    /// The lattice baseline (budgeted) agrees when it fits the budget.
    #[test]
    fn lattice_agrees_when_feasible(cfg in arb_config()) {
        let g = generate(&cfg);
        // Only explore small instances exhaustively.
        if g.computation.process_count() > 4 || g.computation.max_events_per_process() > 6 {
            return Ok(());
        }
        let annotated = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        let truth = annotated.first_satisfying_full_cut(&wcp);
        let lattice = LatticeDetector::new().detect(&annotated, &wcp);
        prop_assert_eq!(lattice.detection.cut().cloned(), truth);
    }

    /// Online (simulated) runs agree with offline, under three different
    /// network seeds and heavy jitter.
    #[test]
    fn online_agrees_with_offline(cfg in arb_config(), scope_n in 1usize..6, net_seed in any::<u64>()) {
        let g = generate(&cfg);
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));
        let annotated = g.computation.annotate();
        let offline_vc = TokenDetector::new().detect(&annotated, &wcp);
        let offline_dd = DirectDependenceDetector::new().detect(&annotated, &wcp);

        let sim_cfg = SimConfig::seeded(net_seed)
            .with_latency(LatencyModel::Uniform { min: 1, max: 25 });
        let online_vc = run_vc_token(&g.computation, &wcp, sim_cfg.clone());
        prop_assert_eq!(&online_vc.report.detection, &offline_vc.detection);

        let online_mt = run_multi_token(&g.computation, &wcp, sim_cfg.clone(), 2);
        prop_assert_eq!(&online_mt.report.detection, &offline_vc.detection);

        for parallel in [false, true] {
            let online_dd = run_direct(&g.computation, &wcp, sim_cfg.clone(), parallel);
            prop_assert_eq!(&online_dd.report.detection, &offline_dd.detection);
        }
    }

    /// The direct-dependence algorithm's full cut projects to the
    /// vector-clock algorithm's scope cut, and is itself consistent.
    #[test]
    fn dd_full_cut_extends_scope_cut(cfg in arb_config(), scope_n in 1usize..6) {
        let g = generate(&cfg);
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));
        let annotated = g.computation.annotate();
        let vc = TokenDetector::new().detect(&annotated, &wcp);
        let dd = DirectDependenceDetector::new().detect(&annotated, &wcp);
        match (vc.detection.cut(), dd.detection.cut()) {
            (Some(vcut), Some(dcut)) => {
                prop_assert_eq!(wcp.project(vcut), wcp.project(dcut));
                prop_assert!(dcut.is_complete());
                prop_assert!(annotated.is_consistent(dcut));
                prop_assert!(wcp.holds_on(&g.computation, dcut));
            }
            (None, None) => {}
            other => prop_assert!(false, "existence disagreement: {other:?}"),
        }
    }
}

//! Cross-crate agreement suite: every detector family — offline emulations,
//! online simulated actors, threaded actors, and the lattice ground truth —
//! must report the same detection verdict and the same scope projection of
//! the first satisfying cut, on randomized computations (Theorems 3.2, 4.3,
//! 4.4 of the paper). Cases are drawn from fixed seeds via
//! `wcp::obs::rng::Rng`, so failures reproduce exactly.

use wcp::detect::online::{run_direct, run_multi_token, run_vc_token};
use wcp::detect::{
    CentralizedChecker, Detection, Detector, DirectDependenceDetector, LatticeDetector,
    MultiTokenDetector, TokenDetector,
};
use wcp::obs::rng::Rng;
use wcp::sim::{LatencyModel, SimConfig};
use wcp::trace::generate::{generate, GeneratorConfig, Topology};
use wcp::trace::Wcp;

const CASES: usize = 48;

fn rand_config(rng: &mut Rng) -> GeneratorConfig {
    let n = rng.gen_range(2usize..6);
    let m = rng.gen_range(2usize..10);
    let topo = match rng.gen_range(0u32..3) {
        0 => Topology::Uniform,
        1 => Topology::Ring,
        _ => Topology::Neighbors {
            degree: rng.gen_range(1usize..3),
        },
    };
    let mut cfg = GeneratorConfig::new(n, m)
        .with_seed(rng.next_u64())
        .with_send_fraction(0.2 + rng.gen_f64() * 0.7)
        .with_predicate_density(0.05 + rng.gen_f64() * 0.45)
        .with_topology(topo);
    if rng.gen_bool(0.5) {
        cfg = cfg.with_plant(rng.gen_f64());
    }
    cfg
}

/// Extracts the scope projection, or `None` if undetected.
fn projected(wcp: &Wcp, detection: &Detection) -> Option<Vec<u64>> {
    detection.cut().map(|c| wcp.project(c))
}

/// All offline detectors agree with the ground truth, for full and partial
/// scopes.
#[test]
fn offline_families_agree() {
    let mut rng = Rng::seed_from_u64(31);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let scope_n = rng.gen_range(1usize..6);
        let g = generate(&cfg);
        let annotated = g.computation.annotate();
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));

        let truth = annotated
            .first_satisfying_cut(&wcp)
            .map(|c| wcp.project(&c));

        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(CentralizedChecker::new()),
            Box::new(TokenDetector::new().with_invariant_checks()),
            Box::new(TokenDetector::new().with_start(wcp.n() - 1)),
            Box::new(MultiTokenDetector::new(2)),
            Box::new(MultiTokenDetector::new(3)),
            Box::new(DirectDependenceDetector::new().with_invariant_checks()),
        ];
        for d in &detectors {
            let report = d.detect(&annotated, &wcp);
            assert_eq!(
                projected(&wcp, &report.detection),
                truth,
                "{} disagrees with ground truth on {cfg:?}",
                d.name()
            );
        }
    }
}

/// The lattice baseline (budgeted) agrees when it fits the budget.
#[test]
fn lattice_agrees_when_feasible() {
    let mut rng = Rng::seed_from_u64(32);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let g = generate(&cfg);
        // Only explore small instances exhaustively.
        if g.computation.process_count() > 4 || g.computation.max_events_per_process() > 6 {
            continue;
        }
        let annotated = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        let truth = annotated.first_satisfying_full_cut(&wcp);
        let lattice = LatticeDetector::new().detect(&annotated, &wcp);
        assert_eq!(lattice.detection.cut().cloned(), truth, "{cfg:?}");
    }
}

/// Online (simulated) runs agree with offline, under different network
/// seeds and heavy jitter.
#[test]
fn online_agrees_with_offline() {
    let mut rng = Rng::seed_from_u64(33);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let scope_n = rng.gen_range(1usize..6);
        let net_seed = rng.next_u64();
        let g = generate(&cfg);
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));
        let annotated = g.computation.annotate();
        let offline_vc = TokenDetector::new().detect(&annotated, &wcp);
        let offline_dd = DirectDependenceDetector::new().detect(&annotated, &wcp);

        let sim_cfg =
            SimConfig::seeded(net_seed).with_latency(LatencyModel::Uniform { min: 1, max: 25 });
        let online_vc = run_vc_token(&g.computation, &wcp, sim_cfg.clone());
        assert_eq!(
            &online_vc.report.detection, &offline_vc.detection,
            "{cfg:?}"
        );

        let online_mt = run_multi_token(&g.computation, &wcp, sim_cfg.clone(), 2);
        assert_eq!(
            &online_mt.report.detection, &offline_vc.detection,
            "{cfg:?}"
        );

        for parallel in [false, true] {
            let online_dd = run_direct(&g.computation, &wcp, sim_cfg.clone(), parallel);
            assert_eq!(
                &online_dd.report.detection, &offline_dd.detection,
                "{cfg:?}"
            );
        }
    }
}

/// The direct-dependence algorithm's full cut projects to the vector-clock
/// algorithm's scope cut, and is itself consistent.
#[test]
fn dd_full_cut_extends_scope_cut() {
    let mut rng = Rng::seed_from_u64(34);
    for _ in 0..CASES {
        let cfg = rand_config(&mut rng);
        let scope_n = rng.gen_range(1usize..6);
        let g = generate(&cfg);
        let n = g.computation.process_count();
        let wcp = Wcp::over_first(scope_n.min(n));
        let annotated = g.computation.annotate();
        let vc = TokenDetector::new().detect(&annotated, &wcp);
        let dd = DirectDependenceDetector::new().detect(&annotated, &wcp);
        match (vc.detection.cut(), dd.detection.cut()) {
            (Some(vcut), Some(dcut)) => {
                assert_eq!(wcp.project(vcut), wcp.project(dcut), "{cfg:?}");
                assert!(dcut.is_complete());
                assert!(annotated.is_consistent(dcut));
                assert!(wcp.holds_on(&g.computation, dcut));
            }
            (None, None) => {}
            other => panic!("existence disagreement on {cfg:?}: {other:?}"),
        }
    }
}

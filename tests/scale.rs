//! Moderate-scale stress tests: the complexity claims at sizes two orders
//! of magnitude above the unit tests, plus end-to-end sanity at scale.
//!
//! These sizes (N up to 100, m up to 100 — 10,000 events) keep debug-mode
//! runtimes in seconds while being large enough that any accidental
//! quadratic-per-process behaviour would show up as a timeout.

use wcp::detect::online::run_direct;
use wcp::detect::{vc_snapshot_queues, CentralizedChecker};
use wcp::detect::{
    Detector, DirectDependenceDetector, StreamingChecker, StreamingStatus, TokenDetector,
};
use wcp::sim::SimConfig;
use wcp::trace::generate::{generate, GeneratorConfig};
use wcp::trace::Wcp;

fn big(n: usize, m: usize, seed: u64) -> wcp::trace::Computation {
    generate(
        &GeneratorConfig::new(n, m)
            .with_seed(seed)
            .with_predicate_density(0.15)
            .with_plant(0.9),
    )
    .computation
}

#[test]
fn token_detector_at_n100() {
    let c = big(100, 50, 1);
    let wcp = Wcp::over_first(100);
    let a = c.annotate();
    let report = TokenDetector::new().detect(&a, &wcp);
    let cut = report.detection.cut().expect("planted cut");
    assert!(a.is_consistent_over(cut, wcp.scope()));
    // §3.4 bounds at scale.
    let n = 100u64;
    let m1 = c.max_events_per_process() as u64 + 1;
    assert!(report.metrics.token_hops <= n * m1);
    assert!(report.metrics.total_work() <= 2 * n * n * m1);
    assert!(report.metrics.max_process_work() <= 2 * n * m1);
}

#[test]
fn direct_detector_at_n100() {
    let c = big(100, 50, 2);
    let wcp = Wcp::over_first(100);
    let a = c.annotate();
    let report = DirectDependenceDetector::new().detect(&a, &wcp);
    let cut = report.detection.cut().expect("planted cut");
    assert!(cut.is_complete());
    // §4.4 bounds at scale.
    let m1 = c.max_events_per_process() as u64 + 1;
    assert!(
        report.metrics.max_process_work() <= 4 * m1,
        "O(m) per process"
    );
    assert!(report.metrics.max_buffered_snapshots <= m1);
}

#[test]
fn agreement_at_scale() {
    let c = big(60, 60, 3);
    let a = c.annotate();
    for scope_n in [10usize, 40, 60] {
        let wcp = Wcp::over_first(scope_n);
        let token = TokenDetector::new().detect(&a, &wcp);
        let checker = CentralizedChecker::new().detect(&a, &wcp);
        let direct = DirectDependenceDetector::new().detect(&a, &wcp);
        assert_eq!(token.detection, checker.detection, "scope {scope_n}");
        match (token.detection.cut(), direct.detection.cut()) {
            (Some(t), Some(d)) => assert_eq!(wcp.project(t), wcp.project(d)),
            (None, None) => {}
            other => panic!("scope {scope_n}: {other:?}"),
        }
    }
}

#[test]
fn online_direct_at_scale() {
    let c = big(40, 40, 4);
    let wcp = Wcp::over_first(40);
    let offline = DirectDependenceDetector::new().detect(&c.annotate(), &wcp);
    let online = run_direct(&c, &wcp, SimConfig::seeded(9), true);
    assert_eq!(online.report.detection, offline.detection);
}

#[test]
fn streaming_checker_at_scale() {
    let c = big(50, 80, 5);
    let wcp = Wcp::over_first(50);
    let a = c.annotate();
    let queues = vc_snapshot_queues(&a, &wcp);
    let mut checker = StreamingChecker::new(50);
    let mut detected = None;
    // Round-robin feeding across positions.
    let mut next = vec![0usize; 50];
    'outer: loop {
        let mut any = false;
        for pos in 0..50 {
            if let Some(s) = queues[pos].get(next[pos]) {
                next[pos] += 1;
                any = true;
                if let StreamingStatus::Detected(g) = checker.push(pos, s.clone()) {
                    detected = Some(g);
                    break 'outer;
                }
            }
        }
        if !any {
            break;
        }
    }
    let batch = CentralizedChecker::new().detect(&a, &wcp);
    assert_eq!(
        detected,
        batch.detection.cut().map(|cut| wcp.project(cut)),
        "streaming and batch must agree at scale"
    );
}

//! Satellite property: the recorded event stream is a *lossless* account of
//! a detector run — folding it back through [`wcp::detect::replay_metrics`]
//! reconstructs the exact [`wcp::detect::DetectionMetrics`] the run
//! reported, for every offline detector family, on detecting and
//! non-detecting runs alike.

use std::sync::Arc;

use wcp::detect::{
    replay_metrics, CentralizedChecker, DetectionReport, Detector, DirectDependenceDetector,
    HierarchicalChecker, LatticeDetector, MultiTokenDetector, TokenDetector,
};
use wcp::obs::rng::Rng;
use wcp::obs::{RingRecorder, RunReport};
use wcp::trace::generate::{generate, GeneratorConfig};
use wcp::trace::Wcp;

const RING_CAPACITY: usize = 1 << 16;

/// Runs `make` with a fresh ring recorder and checks the replay property.
fn assert_replay_exact(
    label: &str,
    make: impl FnOnce(Arc<RingRecorder>) -> DetectionReport,
) -> DetectionReport {
    let ring = Arc::new(RingRecorder::new(RING_CAPACITY));
    let report = make(ring.clone());
    assert_eq!(ring.dropped(), 0, "{label}: ring overflowed, test is moot");
    let events = ring.events();
    let replayed = replay_metrics(report.metrics.per_process_work.len(), &events);
    assert_eq!(replayed, report.metrics, "{label}: replay diverged");
    report
}

fn cases(seed: u64, count: usize) -> Vec<GeneratorConfig> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let n = rng.gen_range(2usize..6);
            let m = rng.gen_range(3usize..12);
            let mut cfg = GeneratorConfig::new(n, m)
                .with_seed(rng.next_u64())
                .with_predicate_density(0.1 + rng.gen_f64() * 0.5);
            if rng.gen_bool(0.5) {
                cfg = cfg.with_plant(0.3 + rng.gen_f64() * 0.7);
            }
            cfg
        })
        .collect()
}

#[test]
fn token_detector_replays_exactly() {
    for cfg in cases(61, 24) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        assert_replay_exact(&format!("token {cfg:?}"), |ring| {
            TokenDetector::new().with_recorder(ring).detect(&a, &wcp)
        });
    }
}

#[test]
fn checker_replays_exactly() {
    for cfg in cases(62, 24) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        assert_replay_exact(&format!("checker {cfg:?}"), |ring| {
            CentralizedChecker::new()
                .with_recorder(ring)
                .detect(&a, &wcp)
        });
    }
}

#[test]
fn direct_detector_replays_exactly() {
    for cfg in cases(63, 24) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        assert_replay_exact(&format!("direct {cfg:?}"), |ring| {
            DirectDependenceDetector::new()
                .with_recorder(ring)
                .detect(&a, &wcp)
        });
    }
}

#[test]
fn multi_token_detector_replays_exactly() {
    for cfg in cases(64, 16) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        for groups in [1usize, 2, 3] {
            let report = assert_replay_exact(&format!("multi:{groups} {cfg:?}"), |ring| {
                MultiTokenDetector::new(groups)
                    .with_recorder(ring)
                    .detect(&a, &wcp)
            });
            // The concurrent variant tracks its critical path explicitly;
            // the replay must preserve it rather than fall back to
            // sequential totals.
            assert!(report.metrics.parallel_time <= report.metrics.total_work());
        }
    }
}

#[test]
fn lattice_detector_replays_exactly() {
    for cfg in cases(65, 12) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        assert_replay_exact(&format!("lattice {cfg:?}"), |ring| {
            LatticeDetector::new().with_recorder(ring).detect(&a, &wcp)
        });
    }
}

#[test]
fn hierarchical_checker_replays_exactly() {
    for cfg in cases(66, 12) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        for groups in [1usize, 2] {
            assert_replay_exact(&format!("hier:{groups} {cfg:?}"), |ring| {
                HierarchicalChecker::new(groups)
                    .with_recorder(ring)
                    .detect(&a, &wcp)
            });
        }
    }
}

/// The event stream also folds into a coherent [`RunReport`]: token
/// movement, candidate verdicts and the final cut all line up with the
/// detection report.
#[test]
fn token_run_report_matches_detection() {
    for cfg in cases(67, 16) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        let ring = Arc::new(RingRecorder::new(RING_CAPACITY));
        let report = TokenDetector::new()
            .with_recorder(ring.clone())
            .detect(&a, &wcp);
        let run = RunReport::from_events(&ring.events());
        assert_eq!(run.token_hops(), report.metrics.token_hops, "{cfg:?}");
        assert_eq!(
            run.eliminations.len() as u64,
            report.metrics.candidates_consumed,
            "{cfg:?}"
        );
        assert_eq!(
            run.detected_cut.as_deref(),
            report.detection.cut().map(|c| c.as_slice()),
            "{cfg:?}"
        );
        assert!(run.finished_at.is_some(), "{cfg:?}");
    }
}

/// A disabled recorder must not change any metric: detectors behave
/// identically with and without observation.
#[test]
fn recording_is_metrics_neutral() {
    for cfg in cases(68, 12) {
        let g = generate(&cfg);
        let a = g.computation.annotate();
        let wcp = Wcp::over_all(&g.computation);
        let plain = TokenDetector::new().detect(&a, &wcp);
        let ring = Arc::new(RingRecorder::new(RING_CAPACITY));
        let recorded = TokenDetector::new().with_recorder(ring).detect(&a, &wcp);
        assert_eq!(plain.detection, recorded.detection, "{cfg:?}");
        assert_eq!(plain.metrics, recorded.metrics, "{cfg:?}");
    }
}

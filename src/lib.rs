//! `wcp` — distributed detection of weak conjunctive predicates.
//!
//! This is the facade crate of the workspace reproducing Garg & Chase,
//! *Distributed Algorithms for Detecting Conjunctive Predicates*
//! (ICDCS 1995). It re-exports the member crates:
//!
//! - [`clocks`] — vector clocks, scalar clocks, cuts, identifiers,
//! - [`trace`] — the computation model, workload generators, the
//!   global-state lattice,
//! - [`sim`] — the deterministic discrete-event message-passing simulator,
//! - [`runtime`] — the threaded actor runtime,
//! - [`detect`] — the detection algorithms themselves (the paper's
//!   contribution) and the Section 5 lower-bound adversary,
//! - [`obs`] — observability: trace recorders, histograms, run reports,
//!   and the dependency-free JSON and RNG utilities the workspace shares,
//! - [`net`] — real socket transport: wire codec, TCP/loopback links,
//!   deterministic fault injection, and socket-connected detection peers,
//! - [`session`] — the multi-tenant session layer: a predicate registry,
//!   shared arena-backed snapshot store, and router serving thousands of
//!   concurrent predicates over one event stream,
//! - [`fuzz`] — the differential conformance fuzzer: seeded campaigns
//!   over every detector family, deterministic shrinking, and the
//!   `tests/corpus/` regression format.
//!
//! # Quickstart
//!
//! ```rust
//! use wcp::clocks::ProcessId;
//! use wcp::detect::{Detection, Detector, TokenDetector};
//! use wcp::trace::{ComputationBuilder, Wcp};
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! let mut b = ComputationBuilder::new(2);
//! let m = b.send(p0, p1);
//! b.mark_true(p0);
//! b.receive(p1, m);
//! b.mark_true(p1);
//! let computation = b.build()?;
//!
//! let report = TokenDetector::new().detect(&computation.annotate(), &Wcp::over_first(2));
//! assert!(matches!(report.detection, Detection::Detected { .. }));
//! # Ok::<(), wcp::trace::ComputationError>(())
//! ```

#![forbid(unsafe_code)]

pub use wcp_clocks as clocks;
pub use wcp_detect as detect;
pub use wcp_fuzz as fuzz;
pub use wcp_net as net;
pub use wcp_obs as obs;
pub use wcp_record as record;
pub use wcp_runtime as runtime;
pub use wcp_session as session;
pub use wcp_sim as sim;
pub use wcp_trace as trace;
